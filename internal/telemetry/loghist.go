package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// This file is the latency-distribution half of the registry: a
// log-bucketed histogram whose bucket boundaries are a deterministic
// function of a small scheme (min bound, growth factor, bucket count), so
// two processes — or two PRs — that observe the same values produce
// byte-identical snapshots that merge without loss. Fixed-boundary
// histograms are what make committed perf baselines comparable: a BENCH
// file written last month and a fresh run today bucket the same latencies
// into the same bins, and quantile estimates diff meaningfully.

// LogScheme parameterizes a log-bucketed histogram: Buckets upper bounds
// starting at Min and growing geometrically by Growth. The scheme — not the
// data — fixes the boundaries, so histograms from different runs, machines
// or PRs are mergeable bin-for-bin.
type LogScheme struct {
	// Min is the first (smallest) inclusive upper bound.
	Min float64
	// Growth is the geometric ratio between consecutive bounds (> 1).
	Growth float64
	// Buckets is the number of finite bounds; observations above the last
	// bound land in the implicit overflow bucket.
	Buckets int
}

// LatencyScheme is the default scheme for wall-clock latencies in seconds:
// 10µs to ~10min in quarter-decade steps, fine enough that a 2x regression
// moves mass several buckets.
var LatencyScheme = LogScheme{Min: 10e-6, Growth: 1.7782794100389228, Buckets: 28} // 10^(1/4) growth

// CycleScheme is the default scheme for modeled per-run cycle counts: 1k to
// ~10^12 cycles in quarter-decade steps.
var CycleScheme = LogScheme{Min: 1e3, Growth: 1.7782794100389228, Buckets: 36}

// Bounds materializes the scheme's ascending inclusive upper bounds. Bounds
// are computed by repeated multiplication from Min, which is deterministic
// for a given scheme on every platform (IEEE-754 multiplication is exact-ly
// specified, unlike a per-bucket math.Pow that libm could round differently).
func (s LogScheme) Bounds() []float64 {
	n := s.Buckets
	if n <= 0 {
		return nil
	}
	b := make([]float64, n)
	v := s.Min
	for i := 0; i < n; i++ {
		b[i] = v
		v *= s.Growth
	}
	return b
}

// Valid reports whether the scheme describes a usable histogram.
func (s LogScheme) Valid() bool {
	return s.Min > 0 && s.Growth > 1 && s.Buckets > 0
}

// LogHist is a deterministic log-bucketed histogram: counts-per-bucket under
// a LogScheme, plus an observation count and sum. All methods are nil-safe
// and the counters are atomic, so concurrent observers need no lock; note
// that under concurrency the float Sum accumulates in scheduling order, so
// only single-goroutine (or post-merge, submission-ordered) observation
// yields bit-identical sums — the property the determinism gates pin for
// the modeled-cycle histogram.
type LogHist struct {
	scheme LogScheme
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	count  atomic.Uint64
	sum    Gauge
}

// NewLogHist returns an empty histogram under the scheme. An invalid scheme
// returns nil, whose methods are no-ops.
func NewLogHist(s LogScheme) *LogHist {
	if !s.Valid() {
		return nil
	}
	b := s.Bounds()
	return &LogHist{scheme: s, bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. Values at or below the first bound land in
// bucket 0; values above the last bound land in the overflow bucket. The
// bucket is found by binary search over the materialized bounds (never by
// floating-point log arithmetic), so placement is exactly reproducible.
func (h *LogHist) Observe(x float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, x) // first bound >= x: the inclusive upper bound
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(x)
}

// Count returns the total number of observations.
func (h *LogHist) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *LogHist) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Scheme returns the histogram's bucket scheme (zero value when nil).
func (h *LogHist) Scheme() LogScheme {
	if h == nil {
		return LogScheme{}
	}
	return h.scheme
}

// Snapshot copies the histogram into its serialized form, which shares the
// HistogramSnapshot shape with fixed-bucket histograms — so the JSON
// metrics snapshot, the Prometheus exposition and the quantile/merge
// helpers all treat the two identically.
func (h *LogHist) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Value(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucketed counts,
// interpolating linearly inside the bucket that contains the target rank
// (the Prometheus histogram_quantile estimator). The first bucket
// interpolates from 0; the overflow bucket clamps to the last finite bound,
// so an estimate never invents mass beyond what the histogram can resolve.
// An empty snapshot returns NaN.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		lo := float64(cum)
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1] // overflow: clamp to last bound
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		frac := 0.0
		if c > 0 {
			frac = (rank - lo) / float64(c)
		}
		if frac < 0 {
			frac = 0
		}
		return lower + (upper-lower)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// BucketMismatchError reports an attempt to merge two histogram snapshots
// whose bucket schemes differ — either a different bound count or a
// differing bound value. Bucket is -1 for a length mismatch, otherwise the
// index of the first differing bound.
type BucketMismatchError struct {
	LenA, LenB int     // bound counts of the two snapshots
	Bucket     int     // first differing bound index, or -1 for a length mismatch
	A, B       float64 // the differing bound values (zero for a length mismatch)
}

func (e *BucketMismatchError) Error() string {
	if e.Bucket < 0 {
		return fmt.Sprintf("telemetry: merge of histograms with %d vs %d bounds", e.LenA, e.LenB)
	}
	return fmt.Sprintf("telemetry: merge of histograms with different bounds at bucket %d (%v vs %v)", e.Bucket, e.A, e.B)
}

// Merge returns the bucket-wise sum of two snapshots. Merging is
// commutative and associative on the counts (uint64 adds); the float Sum
// adds in argument order, so fold snapshots in a fixed order when
// bit-identical output matters. Snapshots with different bounds cannot be
// merged losslessly and return a *BucketMismatchError.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) (HistogramSnapshot, error) {
	if len(o.Bounds) == 0 && o.Count == 0 {
		return s.clone(), nil
	}
	if len(s.Bounds) == 0 && s.Count == 0 {
		return o.clone(), nil
	}
	if len(s.Bounds) != len(o.Bounds) {
		return HistogramSnapshot{}, &BucketMismatchError{LenA: len(s.Bounds), LenB: len(o.Bounds), Bucket: -1}
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return HistogramSnapshot{}, &BucketMismatchError{LenA: len(s.Bounds), LenB: len(o.Bounds), Bucket: i, A: s.Bounds[i], B: o.Bounds[i]}
		}
	}
	out := s.clone()
	for i := range o.Counts {
		out.Counts[i] += o.Counts[i]
	}
	out.Count += o.Count
	out.Sum += o.Sum
	return out, nil
}

func (s HistogramSnapshot) clone() HistogramSnapshot {
	return HistogramSnapshot{
		Bounds: append([]float64(nil), s.Bounds...),
		Counts: append([]uint64(nil), s.Counts...),
		Count:  s.Count,
		Sum:    s.Sum,
	}
}

// LogHist returns (creating if needed) the log-bucketed histogram for
// name+labels under the given scheme. Like Histogram, the scheme is fixed
// at first creation; later calls with a different scheme return the
// existing histogram unchanged. A nil registry returns nil.
func (r *Registry) LogHist(name string, s LogScheme, labels ...string) *LogHist {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	r.mu.RLock()
	h := r.logHists[k]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.logHists[k]; h == nil {
		h = NewLogHist(s)
		if h == nil {
			return nil
		}
		r.logHists[k] = h
	}
	return h
}
