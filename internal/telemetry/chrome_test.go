package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixedSpans is a hand-built two-cell pipeline fragment with fixed
// timestamps, the input for the golden-file shape test. IDs follow the real
// derivation so parent links in the output resolve.
func fixedSpans() []SpanData {
	batch := SpanID(0, "exec.batch", 1)
	cell0 := SpanID(batch, "cell", 0)
	cell1 := SpanID(batch, "cell", 1)
	return []SpanData{
		{ID: batch, Name: "exec.batch", StartNs: 1_000_000, DurNs: 9_000_000,
			Attrs: map[string]any{"cells": 2}},
		{ID: cell1, Parent: batch, Name: "cell", StartNs: 1_500_000, DurNs: 4_000_000, TID: 2,
			Attrs: map[string]any{"index": 1, "cache": "hit"}},
		{ID: cell0, Parent: batch, Name: "cell", StartNs: 1_200_000, DurNs: 6_000_000, TID: 1,
			Attrs: map[string]any{"index": 0, "cache": "miss"}},
		{ID: SpanID(cell0, "build", 100), Parent: cell0, Name: "build",
			StartNs: 1_300_000, DurNs: 2_000_000, TID: 1},
	}
}

// The Chrome exporter's output is pinned by a golden file: one trace_event
// JSON document with spans as complete events in deterministic ID order
// (note cell 0 sorts by ID, not by its later arrival) and instants on the
// sequence axis. Regenerate with `go test ./internal/telemetry -run Golden
// -update` after an intentional format change.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf)
	for _, d := range fixedSpans() {
		tr.RecordSpan(d)
	}
	tr.Emit("trap", map[string]any{"trap": "btra", "pc": 4096})
	tr.Emit("attack.detect", map[string]any{"via": "btdp-read"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace diverges from golden file:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}

	// The document must also be structurally valid trace_event JSON: a
	// traceEvents array where every record carries a phase and spans ("X")
	// carry a duration.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(fixedSpans())+2 {
		t.Fatalf("%d trace events, want %d", len(doc.TraceEvents), len(fixedSpans())+2)
	}
	for i, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			if _, ok := ev["dur"]; !ok {
				t.Errorf("event %d: complete event without dur", i)
			}
		case "i":
			if ev["s"] != "p" {
				t.Errorf("event %d: instant without process scope", i)
			}
		default:
			t.Errorf("event %d: unexpected phase %v", i, ev["ph"])
		}
	}
}

// A tracer that records concurrently with Close must never corrupt the
// document: post-Close records are dropped and Close never writes twice.
func TestChromeTracerCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf)
	tr.RecordSpan(SpanData{ID: 1, Name: "a"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	tr.RecordSpan(SpanData{ID: 2, Name: "late"})
	tr.Emit("late", nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Error("second Close wrote more output")
	}
}
