// Package rng provides the deterministic pseudo-random number generator that
// drives every diversification decision in the toolchain.
//
// R2C's security argument rests on randomization being unpredictable to the
// attacker but reproducible by the defender: the paper recompiles each SPEC
// run with a fresh seed (Section 6.2) while the artifact keeps builds
// reproducible from a seed. We mirror that: a single 64-bit seed fully
// determines function order, BTRA selection, stack layouts and every other
// random choice, so a build (and an experiment) can be replayed exactly.
//
// The generator is xoshiro256** seeded through splitmix64, the combination
// recommended by its authors for arbitrary 64-bit seeds. It is not a
// cryptographic generator; the simulated attacker never attacks the stream
// itself, only the memory layouts it produces.
package rng

// splitmix64 advances a splitmix64 state and returns the next output.
// It is used only to expand the user seed into the xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; derive per-goroutine generators with Split.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from a single 64-bit seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state; splitmix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent generator from this one. The derived stream
// is decorrelated by re-seeding through splitmix64, so a compiler pass can
// hand sub-generators to per-function workers without interleaving effects.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.boundedUint64(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return r.boundedUint64(n)
}

// boundedUint64 implements Lemire's nearly-divisionless bounded generation
// with a rejection loop that removes modulo bias.
func (r *RNG) boundedUint64(n uint64) uint64 {
	for {
		v := r.Uint64()
		// Fast path: if n divides 2^64 the masking below is exact.
		if n&(n-1) == 0 {
			return v & (n - 1)
		}
		// Rejection sampling over the largest multiple of n.
		max := (^uint64(0)) - (^uint64(0))%n - 1
		if v <= max {
			return v % n
		}
	}
}

// IntRange returns a uniform int in [lo, hi] inclusive. It panics if lo > hi.
func (r *RNG) IntRange(lo, hi int) int {
	if lo > hi {
		panic("rng: IntRange with lo > hi")
	}
	return lo + r.Intn(hi-lo+1)
}

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher–Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniformly chosen element of s. It panics on empty input.
func Choice[T any](r *RNG, s []T) T {
	if len(s) == 0 {
		panic("rng: Choice from empty slice")
	}
	return s[r.Intn(len(s))]
}

// Sample returns k distinct elements drawn uniformly from s (in random
// order). It panics if k > len(s). The input slice is not modified.
func Sample[T any](r *RNG, s []T, k int) []T {
	if k > len(s) {
		panic("rng: Sample larger than population")
	}
	// Partial Fisher–Yates over a copy of the index space.
	idx := r.Perm(len(s))[:k]
	out := make([]T, k)
	for i, j := range idx {
		out[i] = s[j]
	}
	return out
}
