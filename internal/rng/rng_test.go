package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 60 {
		t.Fatalf("zero seed generator looks degenerate: %d distinct of 64", len(seen))
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for n := 1; n <= 100; n++ {
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntRange(3,7) = %d", v)
		}
	}
	if v := r.IntRange(5, 5); v != 5 {
		t.Fatalf("IntRange(5,5) = %d", v)
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared style sanity check over a small modulus.
	r := New(1234)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	for b, c := range counts {
		// Expected 10000 per bucket; allow 5% deviation.
		if c < 9500 || c > 10500 {
			t.Fatalf("bucket %d has %d hits, expected ~10000", b, c)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPermShuffles(t *testing.T) {
	// At least one of a few seeds must produce a non-identity permutation.
	for seed := uint64(0); seed < 4; seed++ {
		p := New(seed).Perm(32)
		for i, v := range p {
			if i != v {
				return
			}
		}
	}
	t.Fatal("Perm produced the identity for every seed")
}

func TestSampleDistinct(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		pop := make([]int, 20)
		for i := range pop {
			pop[i] = i * 3
		}
		s := Sample(New(seed), pop, 8)
		seen := map[int]bool{}
		for _, v := range s {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(s) == 8
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSamplePanicsWhenTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sample(New(1), []int{1, 2}, 3)
}

func TestChoiceCoversAllElements(t *testing.T) {
	r := New(5)
	pop := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		seen[Choice(r, pop)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Choice never produced some elements: %v", seen)
	}
}

func TestSplitDecorrelates(t *testing.T) {
	parent := New(77)
	child := parent.Split()
	matches := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("split stream tracks parent: %d matches", matches)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
