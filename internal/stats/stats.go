// Package stats provides the statistics the evaluation uses: medians (the
// paper reports median execution times over repeated runs), geometric means
// (SPEC overhead aggregation), overhead ratios, and the value-clustering
// analysis at the heart of AOCR's pointer identification (Section 4.2).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Median returns the median of xs. It panics on empty input; sweep code
// that can legitimately see an empty sample (partial-failure tolerance)
// should use MedianErr.
func Median(xs []float64) float64 {
	m, err := MedianErr(xs)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// MedianErr is Median returning an error instead of panicking on empty
// input — the crash path a partially-failed sweep would otherwise hit when
// every run of one benchmark died.
func MedianErr(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: median of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2], nil
	}
	return (s[n/2-1] + s[n/2]) / 2, nil
}

// MedianU64 returns the median of unsigned counts.
func MedianU64(xs []uint64) uint64 {
	if len(xs) == 0 {
		panic("stats: median of empty slice")
	}
	s := append([]uint64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// GeoMean returns the geometric mean of xs (all values must be positive).
// It panics on empty or non-positive input; sweep code that can see
// zero-cycle baselines or empty ratio sets should use GeoMeanErr.
func GeoMean(xs []float64) float64 {
	g, err := GeoMeanErr(xs)
	if err != nil {
		panic(err.Error())
	}
	return g
}

// GeoMeanErr is GeoMean returning an error instead of panicking — the
// "stats: geomean of non-positive value" crash a zero-cycle baseline used
// to inflict on a whole sweep.
func GeoMeanErr(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: geomean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean of non-positive value %v", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Max returns the maximum of xs.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Overhead returns the relative overhead of measured vs baseline as a
// ratio (1.06 = +6%). It panics on a non-positive baseline; sweep code
// should use OverheadErr.
func Overhead(measured, baseline float64) float64 {
	r, err := OverheadErr(measured, baseline)
	if err != nil {
		panic(err.Error())
	}
	return r
}

// OverheadErr is Overhead returning an error instead of panicking on a
// non-positive baseline (a zero-cycle or failed baseline run).
func OverheadErr(measured, baseline float64) (float64, error) {
	if baseline <= 0 {
		return 0, errors.New("stats: non-positive baseline")
	}
	return measured / baseline, nil
}

// Pct converts an overhead ratio to a percentage (1.066 → 6.6).
func Pct(ratio float64) float64 { return (ratio - 1) * 100 }

// Cluster is a group of nearby 64-bit values — the unit of AOCR's
// statistical pointer analysis. The paper observes that pointer values on
// x64 occur in clusters per memory region, with heap pointers "typically
// constituting the third largest cluster" (Section 4.2).
type Cluster struct {
	Lo, Hi uint64
	Count  int
	Values []uint64
}

// Span returns the cluster's value range width.
func (c *Cluster) Span() uint64 { return c.Hi - c.Lo }

// Contains reports whether v falls inside the cluster's range.
func (c *Cluster) Contains(v uint64) bool { return v >= c.Lo && v <= c.Hi }

// ClusterValues groups the values whose pairwise gaps are below maxGap into
// clusters, ordered by descending population. This reproduces the AOCR
// analysis: leaked stack words are grouped by value proximity, and each
// populous cluster corresponds to one mapped region (text, data, heap,
// stack). Zero and small integers are filtered by minValue.
func ClusterValues(values []uint64, maxGap uint64, minValue uint64) []*Cluster {
	var ptrs []uint64
	for _, v := range values {
		if v >= minValue {
			ptrs = append(ptrs, v)
		}
	}
	if len(ptrs) == 0 {
		return nil
	}
	sort.Slice(ptrs, func(i, j int) bool { return ptrs[i] < ptrs[j] })
	var out []*Cluster
	cur := &Cluster{Lo: ptrs[0], Hi: ptrs[0], Count: 1, Values: []uint64{ptrs[0]}}
	for _, v := range ptrs[1:] {
		if v-cur.Hi <= maxGap {
			cur.Hi = v
			cur.Count++
			cur.Values = append(cur.Values, v)
		} else {
			out = append(out, cur)
			cur = &Cluster{Lo: v, Hi: v, Count: 1, Values: []uint64{v}}
		}
	}
	out = append(out, cur)
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// BTRAGuessProbability is the analytic success probability of guessing n
// return addresses with R BTRAs per call site: (1/(R+1))^n (Section 7.2.1).
func BTRAGuessProbability(R, n int) float64 {
	return math.Pow(1/float64(R+1), float64(n))
}

// Wilson returns the Wilson 95% confidence interval for k successes in n
// trials, for reporting Monte-Carlo attack success rates.
func Wilson(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.96
	p := float64(k) / float64(n)
	den := 1 + z*z/float64(n)
	center := (p + z*z/(2*float64(n))) / den
	half := z * math.Sqrt(p*(1-p)/float64(n)+z*z/(4*float64(n)*float64(n))) / den
	return center - half, center + half
}
