package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("median even = %v", m)
	}
	if m := Median([]float64{5}); m != 5 {
		t.Errorf("median single = %v", m)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	_ = Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("median mutated input")
	}
}

func TestMedianU64(t *testing.T) {
	if m := MedianU64([]uint64{9, 1, 5}); m != 5 {
		t.Errorf("medianU64 = %d", m)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); !almost(g, 4) {
		t.Errorf("geomean = %v", g)
	}
	if g := GeoMean([]float64{1, 1, 1}); !almost(g, 1) {
		t.Errorf("geomean ones = %v", g)
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestOverheadAndPct(t *testing.T) {
	r := Overhead(106, 100)
	if !almost(r, 1.06) {
		t.Errorf("overhead = %v", r)
	}
	if p := Pct(r); !almost(p, 6) {
		t.Errorf("pct = %v", p)
	}
}

func TestBTRAGuessProbability(t *testing.T) {
	// Section 7.2.1: with ten BTRAs, four return addresses succeed with
	// probability (1/11)^4 ≈ 0.00007.
	p := BTRAGuessProbability(10, 4)
	if math.Abs(p-0.0000683) > 0.00001 {
		t.Errorf("probability = %v", p)
	}
	if p1 := BTRAGuessProbability(10, 1); !almost(p1, 1.0/11) {
		t.Errorf("single guess = %v", p1)
	}
	if p0 := BTRAGuessProbability(0, 3); !almost(p0, 1) {
		t.Errorf("no BTRAs should mean certain success, got %v", p0)
	}
}

func TestClusterValuesSeparatesRegions(t *testing.T) {
	// Three synthetic regions: "text", "heap" (most values), "stack".
	var vals []uint64
	for i := 0; i < 5; i++ {
		vals = append(vals, 0x555500000000+uint64(i)*64)
	}
	for i := 0; i < 20; i++ {
		vals = append(vals, 0x7f0000000000+uint64(i)*4096)
	}
	for i := 0; i < 10; i++ {
		vals = append(vals, 0x7ffff0000000+uint64(i)*8)
	}
	vals = append(vals, 0, 1, 42) // non-pointers
	cs := ClusterValues(vals, 1<<20, 1<<32)
	if len(cs) != 3 {
		t.Fatalf("clusters = %d, want 3", len(cs))
	}
	if cs[0].Count != 20 {
		t.Errorf("largest cluster count = %d", cs[0].Count)
	}
	if !cs[0].Contains(0x7f0000000000 + 4096) {
		t.Error("largest cluster is not the heap-like region")
	}
}

func TestClusterValuesEmptyAndFiltered(t *testing.T) {
	if cs := ClusterValues(nil, 100, 0); cs != nil {
		t.Error("nil input should give nil clusters")
	}
	if cs := ClusterValues([]uint64{1, 2, 3}, 100, 1<<32); cs != nil {
		t.Error("all-filtered input should give nil clusters")
	}
}

func TestClusterInvariants(t *testing.T) {
	err := quick.Check(func(raw []uint64) bool {
		cs := ClusterValues(raw, 1<<16, 4096)
		total := 0
		for _, c := range cs {
			total += c.Count
			if c.Lo > c.Hi || c.Count != len(c.Values) {
				return false
			}
			for _, v := range c.Values {
				if !c.Contains(v) {
					return false
				}
			}
		}
		// Population must equal the filtered input size.
		want := 0
		for _, v := range raw {
			if v >= 4096 {
				want++
			}
		}
		// Clusters are sorted by descending count.
		for i := 1; i < len(cs); i++ {
			if cs[i].Count > cs[i-1].Count {
				return false
			}
		}
		return total == want
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestWilson(t *testing.T) {
	lo, hi := Wilson(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("wilson(50,100) = [%v,%v]", lo, hi)
	}
	lo, hi = Wilson(0, 0)
	if lo != 0 || hi != 1 {
		t.Errorf("wilson empty = [%v,%v]", lo, hi)
	}
	lo, _ = Wilson(0, 1000)
	if lo != math.Max(lo, 0) || lo > 0.01 {
		t.Errorf("wilson zero successes lo = %v", lo)
	}
}
