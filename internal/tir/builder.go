package tir

import "fmt"

// ModuleBuilder constructs a Module incrementally. Workload generators use
// it; it panics on misuse (a generator bug), while Module.Verify reports
// structural errors as values for everything built programmatically.
type ModuleBuilder struct {
	m *Module
}

// NewModule starts a module with the given name.
func NewModule(name string) *ModuleBuilder {
	return &ModuleBuilder{m: &Module{Name: name}}
}

// AddGlobal appends a data global of size bytes with optional initial words.
func (mb *ModuleBuilder) AddGlobal(name string, size uint64, init ...uint64) *Global {
	g := &Global{Name: name, Size: size, Kind: GlobalData, Init: init}
	mb.m.Globals = append(mb.m.Globals, g)
	return g
}

// AddDefaultParam appends a default-parameter global holding one word.
func (mb *ModuleBuilder) AddDefaultParam(name string, value uint64) *Global {
	g := &Global{Name: name, Size: 8, Kind: GlobalDefaultParam, Init: []uint64{value}}
	mb.m.Globals = append(mb.m.Globals, g)
	return g
}

// AddFuncPtrTable appends a contiguous function-pointer table global; the
// loader writes the address of targets[i] into word i. The table is a
// single global, so its interior layout survives global shuffling — the
// structure-layout property AOCR relies on.
func (mb *ModuleBuilder) AddFuncPtrTable(name string, targets ...string) *Global {
	g := &Global{Name: name, Size: uint64(len(targets)) * 8, Kind: GlobalFuncPtr, InitFuncs: targets}
	mb.m.Globals = append(mb.m.Globals, g)
	return g
}

// AddFuncPtr appends a function-pointer global initialized by the loader to
// the address of target.
func (mb *ModuleBuilder) AddFuncPtr(name, target string) *Global {
	g := &Global{Name: name, Size: 8, Kind: GlobalFuncPtr, InitFunc: target}
	mb.m.Globals = append(mb.m.Globals, g)
	return g
}

// NewFunc starts a protected function with nParams parameters. Parameters
// occupy registers 0..nParams-1 on entry.
func (mb *ModuleBuilder) NewFunc(name string, nParams int) *FuncBuilder {
	f := &Function{Name: name, NParams: nParams, NRegs: nParams, Protected: true}
	mb.m.Funcs = append(mb.m.Funcs, f)
	fb := &FuncBuilder{m: mb.m, f: f}
	fb.NewBlock() // entry block
	return fb
}

// SetEntry declares the entry function.
func (mb *ModuleBuilder) SetEntry(name string) { mb.m.Entry = name }

// Build finalizes and verifies the module.
func (mb *ModuleBuilder) Build() (*Module, error) {
	if err := mb.m.Verify(); err != nil {
		return nil, err
	}
	return mb.m, nil
}

// MustBuild finalizes the module and panics on verification failure. For
// statically-shaped test/workload modules where failure is a programming
// error.
func (mb *ModuleBuilder) MustBuild() *Module {
	m, err := mb.Build()
	if err != nil {
		panic(fmt.Sprintf("tir: MustBuild: %v", err))
	}
	return m
}

// FuncBuilder constructs one function. It keeps a current block; emit
// methods append to it.
type FuncBuilder struct {
	m   *Module
	f   *Function
	cur int
}

// Func returns the function under construction.
func (fb *FuncBuilder) Func() *Function { return fb.f }

// Unprotected marks the function as not compiled by R2C (Section 7.4.1).
func (fb *FuncBuilder) Unprotected() *FuncBuilder {
	fb.f.Protected = false
	return fb
}

// NewReg allocates a fresh virtual register.
func (fb *FuncBuilder) NewReg() Reg {
	r := Reg(fb.f.NRegs)
	fb.f.NRegs++
	return r
}

// Param returns the register holding parameter i.
func (fb *FuncBuilder) Param(i int) Reg {
	if i < 0 || i >= fb.f.NParams {
		panic(fmt.Sprintf("tir: param %d of %d", i, fb.f.NParams))
	}
	return Reg(i)
}

// NewLocal declares a stack slot of size bytes and returns its index.
func (fb *FuncBuilder) NewLocal(name string, size uint64) int {
	fb.f.Locals = append(fb.f.Locals, Local{Name: name, Size: size})
	return len(fb.f.Locals) - 1
}

// NewBlock appends a new basic block and makes it current.
func (fb *FuncBuilder) NewBlock() int {
	fb.f.Blocks = append(fb.f.Blocks, &Block{})
	fb.cur = len(fb.f.Blocks) - 1
	return fb.cur
}

// Block returns the index of the current block.
func (fb *FuncBuilder) Block() int { return fb.cur }

// SetBlock switches the current block.
func (fb *FuncBuilder) SetBlock(b int) {
	if b < 0 || b >= len(fb.f.Blocks) {
		panic("tir: SetBlock out of range")
	}
	fb.cur = b
}

func (fb *FuncBuilder) emit(in Instr) {
	b := fb.f.Blocks[fb.cur]
	if n := len(b.Instrs); n > 0 && b.Instrs[n-1].Op.IsTerminator() {
		panic(fmt.Sprintf("tir: emit %v after terminator in %s block %d", in.Op, fb.f.Name, fb.cur))
	}
	b.Instrs = append(b.Instrs, in)
}

// Const emits dst = imm into a fresh register.
func (fb *FuncBuilder) Const(imm uint64) Reg {
	dst := fb.NewReg()
	fb.emit(Instr{Op: OpConst, Dst: dst, Imm: imm})
	return dst
}

// Mov emits dst = src into dst.
func (fb *FuncBuilder) Mov(dst, src Reg) {
	fb.emit(Instr{Op: OpMov, Dst: dst, A: src})
}

// Bin emits dst = a <op> b into a fresh register.
func (fb *FuncBuilder) Bin(op Op, a, b Reg) Reg {
	if !op.IsBinary() {
		panic("tir: Bin with non-binary op")
	}
	dst := fb.NewReg()
	fb.emit(Instr{Op: op, Dst: dst, A: a, B: b})
	return dst
}

// BinTo emits dst = a <op> b into an existing register (for loop counters).
func (fb *FuncBuilder) BinTo(dst Reg, op Op, a, b Reg) {
	if !op.IsBinary() {
		panic("tir: BinTo with non-binary op")
	}
	fb.emit(Instr{Op: op, Dst: dst, A: a, B: b})
}

// Load emits dst = mem[addr+off].
func (fb *FuncBuilder) Load(addr Reg, off int64) Reg {
	dst := fb.NewReg()
	fb.emit(Instr{Op: OpLoad, Dst: dst, A: addr, Off: off})
	return dst
}

// Store emits mem[addr+off] = val.
func (fb *FuncBuilder) Store(addr Reg, off int64, val Reg) {
	fb.emit(Instr{Op: OpStore, A: addr, Off: off, B: val})
}

// AddrLocal emits dst = &local.
func (fb *FuncBuilder) AddrLocal(local int) Reg {
	dst := fb.NewReg()
	fb.emit(Instr{Op: OpAddrLocal, Dst: dst, Local: local})
	return dst
}

// AddrGlobal emits dst = &global.
func (fb *FuncBuilder) AddrGlobal(name string) Reg {
	dst := fb.NewReg()
	fb.emit(Instr{Op: OpAddrGlobal, Dst: dst, Sym: name})
	return dst
}

// AddrFunc emits dst = &func.
func (fb *FuncBuilder) AddrFunc(name string) Reg {
	dst := fb.NewReg()
	fb.emit(Instr{Op: OpAddrFunc, Dst: dst, Sym: name})
	return dst
}

// Call emits a direct call and returns the result register.
func (fb *FuncBuilder) Call(callee string, args ...Reg) Reg {
	dst := fb.NewReg()
	fb.emit(Instr{Op: OpCall, Dst: dst, Sym: callee, Args: args})
	return dst
}

// CallVoid emits a direct call discarding the result.
func (fb *FuncBuilder) CallVoid(callee string, args ...Reg) {
	fb.emit(Instr{Op: OpCall, Dst: NoReg, Sym: callee, Args: args})
}

// TailCall emits a direct tail call (no BTRAs: no return address is pushed).
func (fb *FuncBuilder) TailCall(callee string, args ...Reg) {
	fb.emit(Instr{Op: OpCall, Dst: NoReg, Sym: callee, Args: args, Tail: true})
	fb.emit(Instr{Op: OpRet})
}

// CallIndirect emits a call through a function pointer register.
func (fb *FuncBuilder) CallIndirect(fn Reg, args ...Reg) Reg {
	dst := fb.NewReg()
	fb.emit(Instr{Op: OpCall, Dst: dst, A: fn, Args: args})
	return dst
}

// Alloc emits dst = malloc(size).
func (fb *FuncBuilder) Alloc(size Reg) Reg {
	dst := fb.NewReg()
	fb.emit(Instr{Op: OpAlloc, Dst: dst, A: size})
	return dst
}

// Free emits free(addr).
func (fb *FuncBuilder) Free(addr Reg) {
	fb.emit(Instr{Op: OpFree, A: addr})
}

// Output emits output(v).
func (fb *FuncBuilder) Output(v Reg) {
	fb.emit(Instr{Op: OpOutput, A: v})
}

// Br emits an unconditional branch.
func (fb *FuncBuilder) Br(target int) {
	fb.emit(Instr{Op: OpBr, Target: target})
}

// CondBr emits a conditional branch.
func (fb *FuncBuilder) CondBr(cond Reg, then, els int) {
	fb.emit(Instr{Op: OpCondBr, A: cond, Target: then, Else: els})
}

// Ret emits a return with a value.
func (fb *FuncBuilder) Ret(v Reg) {
	fb.emit(Instr{Op: OpRet, A: v, HasArg: true})
}

// RetVoid emits a bare return.
func (fb *FuncBuilder) RetVoid() {
	fb.emit(Instr{Op: OpRet})
}
