package tir

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
)

// ContentHash returns a digest of the module's full semantic content: every
// function (including Protected/NoReturn flags, locals and all instruction
// operands) and every global (including initializers and function-pointer
// tables). Two modules with equal content hash compile identically under the
// same configuration and seed, which is what makes the hash usable as a
// build-cache key — workload builders construct a fresh *Module per call,
// so pointer identity cannot identify "the same program".
//
// The hash covers content only, never addresses or pointer values, and each
// variable-length field is length-prefixed so field boundaries cannot alias.
func (m *Module) ContentHash() [sha256.Size]byte {
	h := sha256.New()
	hstr(h, m.Name)
	hstr(h, m.Entry)

	hint(h, len(m.Globals))
	for _, g := range m.Globals {
		hstr(h, g.Name)
		hu64(h, g.Size)
		hint(h, int(g.Kind))
		hint(h, len(g.Init))
		for _, w := range g.Init {
			hu64(h, w)
		}
		hstr(h, g.InitFunc)
		hint(h, len(g.InitFuncs))
		for _, fn := range g.InitFuncs {
			hstr(h, fn)
		}
	}

	hint(h, len(m.Funcs))
	for _, f := range m.Funcs {
		hstr(h, f.Name)
		hint(h, f.NParams)
		hint(h, f.NRegs)
		hbool(h, f.Protected)
		hbool(h, f.NoReturn)
		hint(h, len(f.Locals))
		for _, l := range f.Locals {
			hstr(h, l.Name)
			hu64(h, l.Size)
		}
		hint(h, len(f.Blocks))
		for _, b := range f.Blocks {
			hint(h, len(b.Instrs))
			for _, in := range b.Instrs {
				hint(h, int(in.Op))
				hint(h, int(in.Dst))
				hint(h, int(in.A))
				hint(h, int(in.B))
				hu64(h, in.Imm)
				hu64(h, uint64(in.Off))
				hint(h, in.Local)
				hstr(h, in.Sym)
				hint(h, len(in.Args))
				for _, a := range in.Args {
					hint(h, int(a))
				}
				hint(h, in.Target)
				hint(h, in.Else)
				hbool(h, in.HasArg)
				hbool(h, in.Tail)
			}
		}
	}

	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

func hu64(h hash.Hash, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Write(b[:])
}

func hint(h hash.Hash, v int) { hu64(h, uint64(int64(v))) }

func hstr(h hash.Hash, s string) {
	hint(h, len(s))
	h.Write([]byte(s))
}

func hbool(h hash.Hash, v bool) {
	if v {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
}
