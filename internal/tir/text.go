package tir

// The TIR textual format: a small assembly-like syntax so programs can be
// written in files and compiled with cmd/r2cc, and so modules round-trip
// for debugging. Grammar (line oriented, '#' comments):
//
//	module NAME
//	entry FUNC
//	global NAME data|defaultparam size=N [init=0x..,0x..]
//	global NAME funcptr init=FUNC[,FUNC...]
//	func NAME params=N [unprotected] {
//	  locals NAME:SIZE[, NAME:SIZE...]
//	bLABEL:
//	  rN = const 0x..
//	  rN = rM
//	  rN = OP rA, rB                     (add sub mul div rem and or xor shl
//	                                      shr eq neq lt leq gt geq)
//	  rN = load [rA+OFF]
//	  store [rA+OFF], rB
//	  rN = addrlocal NAME
//	  rN = addrglobal NAME
//	  rN = addrfunc NAME
//	  rN = call F(r..)   |  call F(r..)
//	  rN = callind rA(r..)
//	  tailcall F(r..)
//	  rN = alloc rA
//	  free rA
//	  output rA
//	  br bL
//	  condbr rA, bL, bM
//	  ret [rA]
//	}

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Marshal renders the module in the parseable textual format.
func Marshal(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	fmt.Fprintf(&sb, "entry %s\n\n", m.Entry)
	for _, g := range m.Globals {
		switch {
		case g.Kind == GlobalFuncPtr && len(g.InitFuncs) > 0:
			fmt.Fprintf(&sb, "global %s funcptr init=%s\n", g.Name, strings.Join(g.InitFuncs, ","))
		case g.Kind == GlobalFuncPtr:
			fmt.Fprintf(&sb, "global %s funcptr init=%s\n", g.Name, g.InitFunc)
		default:
			kind := "data"
			if g.Kind == GlobalDefaultParam {
				kind = "defaultparam"
			}
			fmt.Fprintf(&sb, "global %s %s size=%d", g.Name, kind, g.Size)
			if len(g.Init) > 0 {
				parts := make([]string, len(g.Init))
				for i, w := range g.Init {
					parts[i] = fmt.Sprintf("%#x", w)
				}
				fmt.Fprintf(&sb, " init=%s", strings.Join(parts, ","))
			}
			sb.WriteByte('\n')
		}
	}
	for _, f := range m.Funcs {
		attr := ""
		if !f.Protected {
			attr = " unprotected"
		}
		fmt.Fprintf(&sb, "\nfunc %s params=%d%s {\n", f.Name, f.NParams, attr)
		if len(f.Locals) > 0 {
			parts := make([]string, len(f.Locals))
			for i, l := range f.Locals {
				parts[i] = fmt.Sprintf("%s:%d", l.Name, l.Size)
			}
			fmt.Fprintf(&sb, "  locals %s\n", strings.Join(parts, ", "))
		}
		for bi, b := range f.Blocks {
			fmt.Fprintf(&sb, "b%d:\n", bi)
			for _, in := range b.Instrs {
				fmt.Fprintf(&sb, "  %s\n", marshalInstr(in))
			}
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

func regList(rs []Reg) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("r%d", r)
	}
	return strings.Join(parts, ", ")
}

func marshalInstr(in Instr) string {
	switch {
	case in.Op == OpConst:
		return fmt.Sprintf("r%d = const %#x", in.Dst, in.Imm)
	case in.Op == OpMov:
		return fmt.Sprintf("r%d = r%d", in.Dst, in.A)
	case in.Op.IsBinary():
		return fmt.Sprintf("r%d = %s r%d, r%d", in.Dst, in.Op, in.A, in.B)
	case in.Op == OpLoad:
		return fmt.Sprintf("r%d = load [r%d%+d]", in.Dst, in.A, in.Off)
	case in.Op == OpStore:
		return fmt.Sprintf("store [r%d%+d], r%d", in.A, in.Off, in.B)
	case in.Op == OpAddrLocal:
		return fmt.Sprintf("r%d = addrlocal $%d", in.Dst, in.Local)
	case in.Op == OpAddrGlobal:
		return fmt.Sprintf("r%d = addrglobal %s", in.Dst, in.Sym)
	case in.Op == OpAddrFunc:
		return fmt.Sprintf("r%d = addrfunc %s", in.Dst, in.Sym)
	case in.Op == OpAlloc:
		return fmt.Sprintf("r%d = alloc r%d", in.Dst, in.A)
	case in.Op == OpFree:
		return fmt.Sprintf("free r%d", in.A)
	case in.Op == OpOutput:
		return fmt.Sprintf("output r%d", in.A)
	case in.Op == OpCall && in.Tail:
		return fmt.Sprintf("tailcall %s(%s)", in.Sym, regList(in.Args))
	case in.Op == OpCall && in.Sym == "":
		if in.Dst != NoReg {
			return fmt.Sprintf("r%d = callind r%d(%s)", in.Dst, in.A, regList(in.Args))
		}
		return fmt.Sprintf("callind r%d(%s)", in.A, regList(in.Args))
	case in.Op == OpCall:
		if in.Dst != NoReg {
			return fmt.Sprintf("r%d = call %s(%s)", in.Dst, in.Sym, regList(in.Args))
		}
		return fmt.Sprintf("call %s(%s)", in.Sym, regList(in.Args))
	case in.Op == OpBr:
		return fmt.Sprintf("br b%d", in.Target)
	case in.Op == OpCondBr:
		return fmt.Sprintf("condbr r%d, b%d, b%d", in.A, in.Target, in.Else)
	case in.Op == OpRet && in.HasArg:
		return fmt.Sprintf("ret r%d", in.A)
	case in.Op == OpRet:
		return "ret"
	}
	return fmt.Sprintf("?%v", in.Op)
}

// parseError annotates a syntax error with its line number.
type parseError struct {
	line int
	msg  string
}

func (e *parseError) Error() string { return fmt.Sprintf("tir: line %d: %s", e.line, e.msg) }

// Parse reads the textual format back into a verified module.
func Parse(src string) (*Module, error) {
	p := &parser{m: &Module{}}
	for i, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = strings.TrimSpace(line[:idx])
		}
		if line == "" {
			continue
		}
		if err := p.line(i+1, line); err != nil {
			return nil, err
		}
	}
	if p.f != nil {
		return nil, fmt.Errorf("tir: unterminated function %q", p.f.Name)
	}
	if err := p.m.Verify(); err != nil {
		return nil, err
	}
	return p.m, nil
}

type parser struct {
	m *Module
	f *Function
}

var binOps = map[string]Op{
	"add": OpAdd, "sub": OpSub, "mul": OpMul, "div": OpDiv, "rem": OpRem,
	"and": OpAnd, "or": OpOr, "xor": OpXor, "shl": OpShl, "shr": OpShr,
	"eq": OpEq, "neq": OpNeq, "lt": OpLt, "leq": OpLeq, "gt": OpGt, "geq": OpGeq,
}

func (p *parser) line(n int, line string) error {
	fail := func(format string, args ...any) error {
		return &parseError{n, fmt.Sprintf(format, args...)}
	}
	fields := strings.Fields(line)
	switch {
	case fields[0] == "module":
		if len(fields) != 2 {
			return fail("module wants a name")
		}
		p.m.Name = fields[1]
	case fields[0] == "entry":
		if len(fields) != 2 {
			return fail("entry wants a function name")
		}
		p.m.Entry = fields[1]
	case fields[0] == "global":
		return p.global(n, fields)
	case fields[0] == "func":
		return p.funcHeader(n, fields)
	case line == "}":
		if p.f == nil {
			return fail("stray '}'")
		}
		p.f = nil
	case p.f == nil:
		return fail("instruction outside a function: %q", line)
	case fields[0] == "locals":
		return p.locals(n, strings.TrimPrefix(line, "locals "))
	case strings.HasSuffix(fields[0], ":") && strings.HasPrefix(fields[0], "b"):
		id, err := strconv.Atoi(strings.TrimSuffix(fields[0][1:], ":"))
		if err != nil || id != len(p.f.Blocks) {
			return fail("blocks must be declared in order (got %q, want b%d:)", fields[0], len(p.f.Blocks))
		}
		p.f.Blocks = append(p.f.Blocks, &Block{})
	default:
		if len(p.f.Blocks) == 0 {
			return fail("instruction before the first block label")
		}
		in, err := parseInstr(line, p.f)
		if err != nil {
			return fail("%v", err)
		}
		b := p.f.Blocks[len(p.f.Blocks)-1]
		b.Instrs = append(b.Instrs, in)
	}
	return nil
}

func (p *parser) global(n int, fields []string) error {
	fail := func(format string, args ...any) error {
		return &parseError{n, fmt.Sprintf(format, args...)}
	}
	if len(fields) < 3 {
		return fail("global wants: global NAME KIND ...")
	}
	g := &Global{Name: fields[1]}
	opts := map[string]string{}
	for _, f := range fields[3:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return fail("bad global option %q", f)
		}
		opts[k] = v
	}
	switch fields[2] {
	case "data":
		g.Kind = GlobalData
	case "defaultparam":
		g.Kind = GlobalDefaultParam
	case "funcptr":
		g.Kind = GlobalFuncPtr
		targets := strings.Split(opts["init"], ",")
		if len(targets) == 0 || targets[0] == "" {
			return fail("funcptr global wants init=FUNC[,FUNC]")
		}
		if len(targets) == 1 {
			g.InitFunc = targets[0]
		} else {
			g.InitFuncs = targets
		}
		g.Size = uint64(len(targets)) * 8
		p.m.Globals = append(p.m.Globals, g)
		return nil
	default:
		return fail("unknown global kind %q", fields[2])
	}
	sz, err := strconv.ParseUint(opts["size"], 0, 64)
	if err != nil {
		return fail("global wants size=N")
	}
	g.Size = sz
	if init := opts["init"]; init != "" {
		for _, w := range strings.Split(init, ",") {
			v, err := strconv.ParseUint(w, 0, 64)
			if err != nil {
				return fail("bad init word %q", w)
			}
			g.Init = append(g.Init, v)
		}
	}
	p.m.Globals = append(p.m.Globals, g)
	return nil
}

func (p *parser) funcHeader(n int, fields []string) error {
	fail := func(format string, args ...any) error {
		return &parseError{n, fmt.Sprintf(format, args...)}
	}
	if p.f != nil {
		return fail("nested function")
	}
	if len(fields) < 3 || fields[len(fields)-1] != "{" {
		return fail("func wants: func NAME params=N [unprotected] {")
	}
	f := &Function{Name: fields[1], Protected: true}
	for _, opt := range fields[2 : len(fields)-1] {
		switch {
		case strings.HasPrefix(opt, "params="):
			v, err := strconv.Atoi(strings.TrimPrefix(opt, "params="))
			if err != nil {
				return fail("bad params count")
			}
			f.NParams = v
			f.NRegs = v
		case opt == "unprotected":
			f.Protected = false
		default:
			return fail("unknown func attribute %q", opt)
		}
	}
	p.m.Funcs = append(p.m.Funcs, f)
	p.f = f
	return nil
}

func (p *parser) locals(n int, rest string) error {
	for _, part := range strings.Split(rest, ",") {
		name, size, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return &parseError{n, fmt.Sprintf("bad local %q (want NAME:SIZE)", part)}
		}
		sz, err := strconv.ParseUint(size, 0, 64)
		if err != nil {
			return &parseError{n, fmt.Sprintf("bad local size %q", size)}
		}
		p.f.Locals = append(p.f.Locals, Local{Name: name, Size: sz})
	}
	return nil
}

// parseReg parses "rN", growing the function's register file as needed.
func parseReg(s string, f *Function) (Reg, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	v, err := strconv.Atoi(s[1:])
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	if v >= f.NRegs {
		f.NRegs = v + 1
	}
	return Reg(v), nil
}

func parseBlockRef(s string) (int, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "b") {
		return 0, fmt.Errorf("bad block ref %q", s)
	}
	return strconv.Atoi(s[1:])
}

// parseMem parses "[rN+OFF]" / "[rN-OFF]" / "[rN]".
func parseMem(s string, f *Function) (Reg, int64, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner[1:], "+-")
	if sep == -1 {
		r, err := parseReg(inner, f)
		return r, 0, err
	}
	sep++
	r, err := parseReg(inner[:sep], f)
	if err != nil {
		return 0, 0, err
	}
	off, err := strconv.ParseInt(inner[sep:], 0, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad displacement in %q", s)
	}
	return r, off, nil
}

// parseCallTail parses "NAME(r1, r2)" or "rN(r1, r2)".
func parseCallTail(s string, f *Function) (sym string, fn Reg, args []Reg, err error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open == -1 || !strings.HasSuffix(s, ")") {
		return "", 0, nil, fmt.Errorf("bad call %q", s)
	}
	target := strings.TrimSpace(s[:open])
	argstr := strings.TrimSpace(s[open+1 : len(s)-1])
	fn = NoReg
	if r, rerr := parseReg(target, f); rerr == nil && isRegToken(target) {
		fn = r
	} else {
		sym = target
	}
	if argstr != "" {
		for _, a := range strings.Split(argstr, ",") {
			r, err := parseReg(a, f)
			if err != nil {
				return "", 0, nil, err
			}
			args = append(args, r)
		}
	}
	return sym, fn, args, nil
}

func isRegToken(s string) bool {
	if len(s) < 2 || s[0] != 'r' {
		return false
	}
	for _, c := range s[1:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

func parseInstr(line string, f *Function) (Instr, error) {
	// Assignment forms: "rN = ...".
	if lhs, rhs, ok := strings.Cut(line, " = "); ok && isRegToken(strings.TrimSpace(lhs)) {
		dst, err := parseReg(lhs, f)
		if err != nil {
			return Instr{}, err
		}
		return parseRHS(dst, strings.TrimSpace(rhs), f)
	}

	fields := strings.Fields(line)
	switch fields[0] {
	case "store":
		rest := strings.TrimPrefix(line, "store ")
		memStr, valStr, ok := strings.Cut(rest, ",")
		if !ok {
			return Instr{}, fmt.Errorf("store wants [mem], reg")
		}
		base, off, err := parseMem(memStr, f)
		if err != nil {
			return Instr{}, err
		}
		val, err := parseReg(valStr, f)
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpStore, A: base, Off: off, B: val}, nil
	case "free", "output":
		r, err := parseReg(fields[1], f)
		if err != nil {
			return Instr{}, err
		}
		op := OpFree
		if fields[0] == "output" {
			op = OpOutput
		}
		return Instr{Op: op, A: r}, nil
	case "call", "callind":
		sym, fn, args, err := parseCallTail(strings.TrimPrefix(strings.TrimPrefix(line, "callind"), "call"), f)
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpCall, Dst: NoReg, Sym: sym, A: fn, Args: args}, nil
	case "tailcall":
		sym, _, args, err := parseCallTail(strings.TrimPrefix(line, "tailcall"), f)
		if err != nil {
			return Instr{}, err
		}
		if sym == "" {
			return Instr{}, fmt.Errorf("tailcall must be direct")
		}
		return Instr{Op: OpCall, Dst: NoReg, Sym: sym, Args: args, Tail: true}, nil
	case "br":
		t, err := parseBlockRef(fields[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpBr, Target: t}, nil
	case "condbr":
		rest := strings.TrimPrefix(line, "condbr ")
		parts := strings.Split(rest, ",")
		if len(parts) != 3 {
			return Instr{}, fmt.Errorf("condbr wants cond, then, else")
		}
		c, err := parseReg(parts[0], f)
		if err != nil {
			return Instr{}, err
		}
		t, err := parseBlockRef(parts[1])
		if err != nil {
			return Instr{}, err
		}
		e, err := parseBlockRef(parts[2])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpCondBr, A: c, Target: t, Else: e}, nil
	case "ret":
		if len(fields) == 1 {
			return Instr{Op: OpRet}, nil
		}
		r, err := parseReg(fields[1], f)
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpRet, A: r, HasArg: true}, nil
	}
	return Instr{}, fmt.Errorf("unknown instruction %q", line)
}

func parseRHS(dst Reg, rhs string, f *Function) (Instr, error) {
	fields := strings.Fields(rhs)
	switch {
	case fields[0] == "const":
		v, err := strconv.ParseUint(fields[1], 0, 64)
		if err != nil {
			return Instr{}, fmt.Errorf("bad const %q", fields[1])
		}
		return Instr{Op: OpConst, Dst: dst, Imm: v}, nil
	case isRegToken(fields[0]) && len(fields) == 1:
		src, err := parseReg(fields[0], f)
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpMov, Dst: dst, A: src}, nil
	case fields[0] == "load":
		base, off, err := parseMem(strings.TrimPrefix(rhs, "load "), f)
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpLoad, Dst: dst, A: base, Off: off}, nil
	case fields[0] == "addrlocal":
		name := fields[1]
		if strings.HasPrefix(name, "$") {
			idx, err := strconv.Atoi(name[1:])
			if err != nil {
				return Instr{}, fmt.Errorf("bad local index %q", name)
			}
			return Instr{Op: OpAddrLocal, Dst: dst, Local: idx}, nil
		}
		for i, l := range f.Locals {
			if l.Name == name {
				return Instr{Op: OpAddrLocal, Dst: dst, Local: i}, nil
			}
		}
		return Instr{}, fmt.Errorf("unknown local %q", name)
	case fields[0] == "addrglobal":
		return Instr{Op: OpAddrGlobal, Dst: dst, Sym: fields[1]}, nil
	case fields[0] == "addrfunc":
		return Instr{Op: OpAddrFunc, Dst: dst, Sym: fields[1]}, nil
	case fields[0] == "alloc":
		r, err := parseReg(fields[1], f)
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpAlloc, Dst: dst, A: r}, nil
	case fields[0] == "call" || fields[0] == "callind":
		sym, fn, args, err := parseCallTail(strings.TrimPrefix(strings.TrimPrefix(rhs, "callind"), "call"), f)
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpCall, Dst: dst, Sym: sym, A: fn, Args: args}, nil
	default:
		if op, ok := binOps[fields[0]]; ok {
			rest := strings.TrimSpace(strings.TrimPrefix(rhs, fields[0]))
			aStr, bStr, okc := strings.Cut(rest, ",")
			if !okc {
				return Instr{}, fmt.Errorf("%s wants two operands", fields[0])
			}
			a, err := parseReg(aStr, f)
			if err != nil {
				return Instr{}, err
			}
			b, err := parseReg(bStr, f)
			if err != nil {
				return Instr{}, err
			}
			return Instr{Op: op, Dst: dst, A: a, B: b}, nil
		}
	}
	return Instr{}, fmt.Errorf("unknown expression %q", rhs)
}

// sortedOpNames is used by documentation tests.
func sortedOpNames() []string {
	var names []string
	for _, v := range opNames {
		names = append(names, v)
	}
	sort.Strings(names)
	return names
}
