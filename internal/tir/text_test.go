package tir

import (
	"reflect"
	"strings"
	"testing"
)

const sampleSrc = `
# a complete sample program
module sample
entry main

global table data size=32 init=0x1,0x2,0x3
global mode defaultparam size=8 init=0x7
global fp funcptr init=leaf
global handlers funcptr init=leaf,leaf

func leaf params=2 {
  locals buf:16
b0:
  r2 = add r0, r1
  r3 = addrlocal buf
  store [r3+0], r2
  r4 = load [r3+0]
  ret r4
}

func helper params=1 unprotected {
b0:
  ret r0
}

func main params=0 {
b0:
  r0 = const 0x5
  r1 = const 3
  r2 = call leaf(r0, r1)
  r3 = addrglobal table
  r4 = load [r3+8]
  r5 = xor r2, r4
  r6 = addrfunc leaf
  r7 = callind r6(r5, r0)
  condbr r7, b1, b2
b1:
  output r7
  br b2
b2:
  r8 = alloc r0
  store [r8+0], r7
  free r8
  r9 = call helper(r7)
  output r9
  ret
}
`

func TestParseSample(t *testing.T) {
	m, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "sample" || m.Entry != "main" {
		t.Fatalf("header: %s/%s", m.Name, m.Entry)
	}
	if len(m.Globals) != 4 || len(m.Funcs) != 3 {
		t.Fatalf("counts: %d globals, %d funcs", len(m.Globals), len(m.Funcs))
	}
	if g := m.Global("handlers"); g.Size != 16 || len(g.InitFuncs) != 2 {
		t.Fatalf("funcptr table: %+v", g)
	}
	if m.Func("helper").Protected {
		t.Fatal("unprotected attribute lost")
	}
	leaf := m.Func("leaf")
	if len(leaf.Locals) != 1 || leaf.Locals[0].Size != 16 {
		t.Fatalf("locals: %+v", leaf.Locals)
	}
}

func TestRoundTrip(t *testing.T) {
	m1, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := Marshal(m1)
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("round trip changed the module:\n%s\nvs\n%s", Marshal(m1), Marshal(m2))
	}
}

func TestMarshalBuilderModule(t *testing.T) {
	// A builder-made module (register-dense, tail calls) must round-trip.
	mb := NewModule("built")
	g := mb.NewFunc("g", 1)
	g.Ret(g.Bin(OpMul, g.Param(0), g.Param(0)))
	f := mb.NewFunc("f", 1)
	f.TailCall("g", f.Param(0))
	main := mb.NewFunc("main", 0)
	x := main.Const(6)
	main.Output(main.Call("f", x))
	main.RetVoid()
	mb.SetEntry("main")
	m1 := mb.MustBuild()

	m2, err := Parse(Marshal(m1))
	if err != nil {
		t.Fatal(err)
	}
	// NRegs may legitimately shrink to the densest numbering; compare the
	// structure that matters.
	if len(m2.Funcs) != len(m1.Funcs) || m2.Entry != m1.Entry {
		t.Fatal("structure lost")
	}
	fi := m2.Func("f")
	last := fi.Blocks[0].Instrs
	if !last[0].Tail {
		t.Fatal("tail call lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"module x\nentry m\nfunc m params=0 {\nb0:\n  bogus r1\n}", "unknown instruction"},
		{"module x\nentry m\nfunc m params=0 {\n  r0 = const 1\n}", "before the first block"},
		{"module x\nentry m\nfunc m params=0 {\nb1:\n  ret\n}", "declared in order"},
		{"module x\nentry m\nglobal g data\nfunc m params=0 {\nb0:\n  ret\n}", "size=N"},
		{"module x\nentry m\nfunc m params=0 {\nb0:\n  ret\n}\n}", "stray"},
		{"module x\nentry m\nfunc m params=0 {\nb0:\n  ret", "unterminated"},
		{"module x\nentry nosuch\nfunc m params=0 {\nb0:\n  ret\n}", "not found"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := "module x # trailing\nentry m\nfunc m params=0 {\nb0:\n  ret # done\n}"
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestSortedOpNamesComplete(t *testing.T) {
	names := sortedOpNames()
	if len(names) != len(opNames) {
		t.Fatal("op name table incomplete")
	}
}
