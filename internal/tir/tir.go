// Package tir defines the toolchain's intermediate representation ("tiny
// IR"). It plays the role LLVM IR plays in the paper: workloads are built as
// TIR modules, and every R2C transformation happens while lowering TIR to
// the simulated ISA.
//
// The IR is deliberately small but structurally faithful to what the R2C
// passes need:
//
//   - functions with basic blocks, mutable virtual registers, and explicit
//     stack slots (Alloca) — the unit stack-slot randomization permutes;
//   - direct, indirect and tail calls — BTRA insertion happens per call
//     site, tail calls are exempt (they push no return address, Section 7.1),
//     and indirect call sites cannot coordinate post-offsets at compile time
//     (Section 5.1);
//   - globals, including function-pointer globals and "default parameter"
//     globals, the data AOCR corrupts for whole-function reuse (Section 2.3);
//   - a Protected flag per function, modelling code not compiled by R2C
//     (Section 7.4.1).
//
// All values are 64-bit words; pointers and integers share the register
// file, exactly like x86_64 general-purpose registers.
package tir

import (
	"fmt"
	"strings"
)

// Reg is a virtual register index, local to a function. Registers are
// mutable (the IR is post-SSA, like LLVM after register allocation inputs).
type Reg int

// NoReg marks an absent register operand (e.g. a call with ignored result).
const NoReg Reg = -1

// Op enumerates instruction opcodes.
type Op int

// Instruction opcodes.
const (
	// OpConst loads an immediate: dst = imm.
	OpConst Op = iota
	// OpMov copies a register: dst = a.
	OpMov
	// OpAdd..OpGeq are binary ALU operations: dst = a <op> b.
	OpAdd
	OpSub
	OpMul
	OpDiv // unsigned division; division by zero traps the VM
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpEq // dst = (a == b) ? 1 : 0
	OpNeq
	OpLt // unsigned compare
	OpLeq
	OpGt
	OpGeq
	// OpLoad loads a word: dst = mem[a + off].
	OpLoad
	// OpStore stores a word: mem[a + off] = b.
	OpStore
	// OpAddrLocal takes the address of a stack slot: dst = &slot[localIndex].
	OpAddrLocal
	// OpAddrGlobal takes the address of a global: dst = &global (via GOT in
	// the PIC relocation model).
	OpAddrGlobal
	// OpAddrFunc materializes a function pointer: dst = &func.
	OpAddrFunc
	// OpCall calls Callee (direct) or the function whose address is in a
	// (indirect, when Callee == ""). Args are passed per the calling
	// convention; dst receives the result if != NoReg.
	OpCall
	// OpAlloc calls the runtime allocator: dst = malloc(a).
	OpAlloc
	// OpFree frees a heap chunk: free(a).
	OpFree
	// OpOutput appends a to the process output stream (the observable
	// behaviour differential tests compare).
	OpOutput
	// OpBr branches unconditionally to Target.
	OpBr
	// OpCondBr branches to Target if a != 0, else to Else.
	OpCondBr
	// OpRet returns (a if HasArg).
	OpRet
)

var opNames = map[Op]string{
	OpConst: "const", OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpDiv: "div", OpRem: "rem", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpEq: "eq", OpNeq: "neq", OpLt: "lt",
	OpLeq: "leq", OpGt: "gt", OpGeq: "geq", OpLoad: "load", OpStore: "store",
	OpAddrLocal: "addrlocal", OpAddrGlobal: "addrglobal", OpAddrFunc: "addrfunc",
	OpCall: "call", OpAlloc: "alloc", OpFree: "free", OpOutput: "output",
	OpBr: "br", OpCondBr: "condbr", OpRet: "ret",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsBinary reports whether o is a two-operand ALU op.
func (o Op) IsBinary() bool { return o >= OpAdd && o <= OpGeq }

// IsTerminator reports whether o ends a basic block.
func (o Op) IsTerminator() bool { return o == OpBr || o == OpCondBr || o == OpRet }

// Instr is one IR instruction. Operand usage depends on Op; unused fields
// are zero. This flat representation keeps the builder and the lowering
// simple and allocation-light.
type Instr struct {
	Op     Op
	Dst    Reg
	A, B   Reg
	Imm    uint64
	Off    int64  // Load/Store displacement
	Local  int    // AddrLocal slot index
	Sym    string // AddrGlobal/AddrFunc/Call target symbol
	Args   []Reg  // Call arguments
	Target int    // Br/CondBr taken block
	Else   int    // CondBr fall-through block
	HasArg bool   // Ret carries a value
	Tail   bool   // Call is a tail call (no return address pushed)
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator.
type Block struct {
	Instrs []Instr
}

// Local is a stack slot. Slots are what stack-slot randomization shuffles
// and what BTDP spill slots are interleaved with (Section 5.2).
type Local struct {
	Name string
	Size uint64 // bytes, rounded up to a word multiple at lowering
}

// Function is a TIR function.
type Function struct {
	Name    string
	NParams int
	NRegs   int
	Locals  []Local
	Blocks  []*Block

	// Protected is false for code "not compiled by R2C" (system libraries
	// in the paper). Unprotected callees overwrite post-offset BTRAs and,
	// by default, calls to them get no BTRAs at all (Section 7.4.1).
	Protected bool

	// NoReturn marks functions that never return (booby traps).
	NoReturn bool
}

// EntryBlock returns the function's entry block index (always 0).
func (f *Function) EntryBlock() int { return 0 }

// GlobalKind classifies globals for layout and for the attacker model.
type GlobalKind int

const (
	// GlobalData is plain data.
	GlobalData GlobalKind = iota
	// GlobalFuncPtr holds a function pointer (set at load time).
	GlobalFuncPtr
	// GlobalDefaultParam is a function default parameter — the kind of
	// global AOCR's attack C corrupts (Section 2.3, Figure 1).
	GlobalDefaultParam
)

func (k GlobalKind) String() string {
	switch k {
	case GlobalData:
		return "data"
	case GlobalFuncPtr:
		return "funcptr"
	case GlobalDefaultParam:
		return "defaultparam"
	}
	return "unknown"
}

// Global is a module-level variable.
type Global struct {
	Name string
	Size uint64 // bytes
	Kind GlobalKind
	// Init holds the initial words. For GlobalFuncPtr, InitFunc names the
	// function whose address the loader writes. InitFuncs, when non-empty,
	// makes the global a function-pointer table: word i receives the
	// address of InitFuncs[i]. Table interiors are contiguous structures —
	// global shuffling permutes whole globals, not struct layouts, exactly
	// the structure-layout assumption AOCR exploits (Section 2.3).
	Init      []uint64
	InitFunc  string
	InitFuncs []string
}

// Module is a complete program.
type Module struct {
	Name    string
	Funcs   []*Function
	Globals []*Global
	Entry   string // entry function name; must take 0 params
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Function {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// Verify checks structural invariants of the module: unique symbol names, a
// valid entry point, terminated blocks, in-range registers/locals/blocks,
// and resolvable call/address targets. Workload generators run this before
// handing a module to the compiler.
func (m *Module) Verify() error {
	seen := map[string]bool{}
	for _, g := range m.Globals {
		if g.Name == "" {
			return fmt.Errorf("tir: unnamed global")
		}
		if seen[g.Name] {
			return fmt.Errorf("tir: duplicate symbol %q", g.Name)
		}
		seen[g.Name] = true
		if g.Size == 0 {
			return fmt.Errorf("tir: global %q has zero size", g.Name)
		}
		if uint64(len(g.Init))*8 > alignWords(g.Size)*8 {
			return fmt.Errorf("tir: global %q init larger than size", g.Name)
		}
		if g.Kind == GlobalFuncPtr && g.InitFunc == "" && len(g.InitFuncs) == 0 {
			return fmt.Errorf("tir: funcptr global %q has no InitFunc", g.Name)
		}
		if g.InitFunc != "" && m.Func(g.InitFunc) == nil {
			return fmt.Errorf("tir: global %q references unknown function %q", g.Name, g.InitFunc)
		}
		if uint64(len(g.InitFuncs))*8 > alignWords(g.Size)*8 {
			return fmt.Errorf("tir: global %q funcptr table larger than size", g.Name)
		}
		for _, fn := range g.InitFuncs {
			if m.Func(fn) == nil {
				return fmt.Errorf("tir: global %q references unknown function %q", g.Name, fn)
			}
		}
	}
	for _, f := range m.Funcs {
		if f.Name == "" {
			return fmt.Errorf("tir: unnamed function")
		}
		if seen[f.Name] {
			return fmt.Errorf("tir: duplicate symbol %q", f.Name)
		}
		seen[f.Name] = true
		if err := m.verifyFunc(f); err != nil {
			return fmt.Errorf("tir: function %q: %w", f.Name, err)
		}
	}
	if m.Entry == "" {
		return fmt.Errorf("tir: module has no entry")
	}
	e := m.Func(m.Entry)
	if e == nil {
		return fmt.Errorf("tir: entry %q not found", m.Entry)
	}
	if e.NParams != 0 {
		return fmt.Errorf("tir: entry %q must take no parameters", m.Entry)
	}
	return nil
}

func (m *Module) verifyFunc(f *Function) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	if f.NParams < 0 || f.NRegs < f.NParams {
		return fmt.Errorf("register file (%d) smaller than params (%d)", f.NRegs, f.NParams)
	}
	checkReg := func(r Reg, what string) error {
		if r < 0 || int(r) >= f.NRegs {
			return fmt.Errorf("%s register %d out of range [0,%d)", what, r, f.NRegs)
		}
		return nil
	}
	for bi, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %d empty", bi)
		}
		for ii, in := range b.Instrs {
			last := ii == len(b.Instrs)-1
			if in.Op.IsTerminator() != last {
				return fmt.Errorf("block %d instr %d: terminator placement", bi, ii)
			}
			switch {
			case in.Op == OpConst:
				if err := checkReg(in.Dst, "dst"); err != nil {
					return err
				}
			case in.Op == OpMov || in.Op == OpOutput || in.Op == OpFree:
				if in.Op == OpMov {
					if err := checkReg(in.Dst, "dst"); err != nil {
						return err
					}
				}
				if err := checkReg(in.A, "src"); err != nil {
					return err
				}
			case in.Op.IsBinary():
				for _, p := range []struct {
					r Reg
					n string
				}{{in.Dst, "dst"}, {in.A, "a"}, {in.B, "b"}} {
					if err := checkReg(p.r, p.n); err != nil {
						return err
					}
				}
			case in.Op == OpLoad:
				if err := checkReg(in.Dst, "dst"); err != nil {
					return err
				}
				if err := checkReg(in.A, "addr"); err != nil {
					return err
				}
			case in.Op == OpStore:
				if err := checkReg(in.A, "addr"); err != nil {
					return err
				}
				if err := checkReg(in.B, "val"); err != nil {
					return err
				}
			case in.Op == OpAddrLocal:
				if err := checkReg(in.Dst, "dst"); err != nil {
					return err
				}
				if in.Local < 0 || in.Local >= len(f.Locals) {
					return fmt.Errorf("block %d: local %d out of range", bi, in.Local)
				}
			case in.Op == OpAddrGlobal:
				if err := checkReg(in.Dst, "dst"); err != nil {
					return err
				}
				if m.Global(in.Sym) == nil {
					return fmt.Errorf("unknown global %q", in.Sym)
				}
			case in.Op == OpAddrFunc:
				if err := checkReg(in.Dst, "dst"); err != nil {
					return err
				}
				if m.Func(in.Sym) == nil {
					return fmt.Errorf("unknown function %q", in.Sym)
				}
			case in.Op == OpAlloc:
				if err := checkReg(in.Dst, "dst"); err != nil {
					return err
				}
				if err := checkReg(in.A, "size"); err != nil {
					return err
				}
			case in.Op == OpCall:
				if in.Dst != NoReg {
					if err := checkReg(in.Dst, "dst"); err != nil {
						return err
					}
				}
				for _, a := range in.Args {
					if err := checkReg(a, "arg"); err != nil {
						return err
					}
				}
				if in.Sym != "" {
					callee := m.Func(in.Sym)
					if callee == nil {
						return fmt.Errorf("call to unknown function %q", in.Sym)
					}
					if callee.NParams != len(in.Args) {
						return fmt.Errorf("call to %q passes %d args, wants %d",
							in.Sym, len(in.Args), callee.NParams)
					}
				} else if err := checkReg(in.A, "callee"); err != nil {
					return err
				}
			case in.Op == OpBr:
				if in.Target < 0 || in.Target >= len(f.Blocks) {
					return fmt.Errorf("br target %d out of range", in.Target)
				}
			case in.Op == OpCondBr:
				if err := checkReg(in.A, "cond"); err != nil {
					return err
				}
				if in.Target < 0 || in.Target >= len(f.Blocks) ||
					in.Else < 0 || in.Else >= len(f.Blocks) {
					return fmt.Errorf("condbr targets out of range")
				}
			case in.Op == OpRet:
				if in.HasArg {
					if err := checkReg(in.A, "ret"); err != nil {
						return err
					}
				}
			default:
				return fmt.Errorf("block %d instr %d: unknown op %v", bi, ii, in.Op)
			}
		}
	}
	return nil
}

// Stats summarizes a module for reports.
type ModuleStats struct {
	Funcs       int
	Blocks      int
	Instrs      int
	CallSites   int
	Globals     int
	GlobalBytes uint64
}

// Stats computes module statistics.
func (m *Module) Stats() ModuleStats {
	var s ModuleStats
	s.Funcs = len(m.Funcs)
	s.Globals = len(m.Globals)
	for _, g := range m.Globals {
		s.GlobalBytes += g.Size
	}
	for _, f := range m.Funcs {
		s.Blocks += len(f.Blocks)
		for _, b := range f.Blocks {
			s.Instrs += len(b.Instrs)
			for _, in := range b.Instrs {
				if in.Op == OpCall {
					s.CallSites++
				}
			}
		}
	}
	return s
}

// String renders the module in a readable textual form.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s (entry %s)\n", m.Name, m.Entry)
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "global %s %s size=%d", g.Name, g.Kind, g.Size)
		if g.InitFunc != "" {
			fmt.Fprintf(&sb, " init=&%s", g.InitFunc)
		}
		sb.WriteByte('\n')
	}
	for _, f := range m.Funcs {
		prot := ""
		if !f.Protected {
			prot = " [unprotected]"
		}
		fmt.Fprintf(&sb, "func %s(params=%d regs=%d locals=%d)%s\n",
			f.Name, f.NParams, f.NRegs, len(f.Locals), prot)
		for bi, b := range f.Blocks {
			fmt.Fprintf(&sb, "  b%d:\n", bi)
			for _, in := range b.Instrs {
				fmt.Fprintf(&sb, "    %s\n", in.String())
			}
		}
	}
	return sb.String()
}

// String renders one instruction.
func (in Instr) String() string {
	switch {
	case in.Op == OpConst:
		return fmt.Sprintf("r%d = const %#x", in.Dst, in.Imm)
	case in.Op == OpMov:
		return fmt.Sprintf("r%d = r%d", in.Dst, in.A)
	case in.Op.IsBinary():
		return fmt.Sprintf("r%d = %s r%d, r%d", in.Dst, in.Op, in.A, in.B)
	case in.Op == OpLoad:
		return fmt.Sprintf("r%d = load [r%d%+d]", in.Dst, in.A, in.Off)
	case in.Op == OpStore:
		return fmt.Sprintf("store [r%d%+d], r%d", in.A, in.Off, in.B)
	case in.Op == OpAddrLocal:
		return fmt.Sprintf("r%d = &local%d", in.Dst, in.Local)
	case in.Op == OpAddrGlobal:
		return fmt.Sprintf("r%d = &%s", in.Dst, in.Sym)
	case in.Op == OpAddrFunc:
		return fmt.Sprintf("r%d = &func %s", in.Dst, in.Sym)
	case in.Op == OpAlloc:
		return fmt.Sprintf("r%d = alloc r%d", in.Dst, in.A)
	case in.Op == OpFree:
		return fmt.Sprintf("free r%d", in.A)
	case in.Op == OpOutput:
		return fmt.Sprintf("output r%d", in.A)
	case in.Op == OpCall:
		dst := ""
		if in.Dst != NoReg {
			dst = fmt.Sprintf("r%d = ", in.Dst)
		}
		tail := ""
		if in.Tail {
			tail = "tail "
		}
		target := in.Sym
		if target == "" {
			target = fmt.Sprintf("*r%d", in.A)
		}
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = fmt.Sprintf("r%d", a)
		}
		return fmt.Sprintf("%s%scall %s(%s)", dst, tail, target, strings.Join(args, ", "))
	case in.Op == OpBr:
		return fmt.Sprintf("br b%d", in.Target)
	case in.Op == OpCondBr:
		return fmt.Sprintf("condbr r%d, b%d, b%d", in.A, in.Target, in.Else)
	case in.Op == OpRet:
		if in.HasArg {
			return fmt.Sprintf("ret r%d", in.A)
		}
		return "ret"
	}
	return fmt.Sprintf("?%v", in.Op)
}

func alignWords(bytes uint64) uint64 { return (bytes + 7) / 8 }
