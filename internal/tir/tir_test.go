package tir

import (
	"strings"
	"testing"
)

// buildAddModule builds a module with main calling add(2,3) and returning it.
func buildAddModule(t *testing.T) *Module {
	t.Helper()
	mb := NewModule("addtest")

	add := mb.NewFunc("add", 2)
	add.Ret(add.Bin(OpAdd, add.Param(0), add.Param(1)))

	main := mb.NewFunc("main", 0)
	a := main.Const(2)
	b := main.Const(3)
	sum := main.Call("add", a, b)
	main.Output(sum)
	main.RetVoid()

	mb.SetEntry("main")
	m, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuilderProducesValidModule(t *testing.T) {
	m := buildAddModule(t)
	if m.Func("add") == nil || m.Func("main") == nil {
		t.Fatal("functions missing")
	}
	st := m.Stats()
	if st.Funcs != 2 || st.CallSites != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVerifyRejectsMissingEntry(t *testing.T) {
	mb := NewModule("bad")
	f := mb.NewFunc("f", 0)
	f.RetVoid()
	if _, err := mb.Build(); err == nil {
		t.Fatal("module without entry verified")
	}
}

func TestVerifyRejectsEntryWithParams(t *testing.T) {
	mb := NewModule("bad")
	f := mb.NewFunc("main", 2)
	f.RetVoid()
	mb.SetEntry("main")
	if _, err := mb.Build(); err == nil {
		t.Fatal("entry with params verified")
	}
}

func TestVerifyRejectsUnterminatedBlock(t *testing.T) {
	m := &Module{
		Name:  "bad",
		Entry: "main",
		Funcs: []*Function{{
			Name: "main", NRegs: 1, Protected: true,
			Blocks: []*Block{{Instrs: []Instr{{Op: OpConst, Dst: 0, Imm: 1}}}},
		}},
	}
	if err := m.Verify(); err == nil {
		t.Fatal("unterminated block verified")
	}
}

func TestVerifyRejectsMidBlockTerminator(t *testing.T) {
	m := &Module{
		Name:  "bad",
		Entry: "main",
		Funcs: []*Function{{
			Name: "main", NRegs: 1, Protected: true,
			Blocks: []*Block{{Instrs: []Instr{
				{Op: OpRet},
				{Op: OpConst, Dst: 0, Imm: 1},
			}}},
		}},
	}
	if err := m.Verify(); err == nil {
		t.Fatal("mid-block terminator verified")
	}
}

func TestVerifyRejectsBadRegister(t *testing.T) {
	m := &Module{
		Name:  "bad",
		Entry: "main",
		Funcs: []*Function{{
			Name: "main", NRegs: 1, Protected: true,
			Blocks: []*Block{{Instrs: []Instr{
				{Op: OpMov, Dst: 5, A: 0},
				{Op: OpRet},
			}}},
		}},
	}
	if err := m.Verify(); err == nil {
		t.Fatal("out-of-range register verified")
	}
}

func TestVerifyRejectsUnknownCallee(t *testing.T) {
	m := &Module{
		Name:  "bad",
		Entry: "main",
		Funcs: []*Function{{
			Name: "main", NRegs: 1, Protected: true,
			Blocks: []*Block{{Instrs: []Instr{
				{Op: OpCall, Dst: NoReg, Sym: "ghost"},
				{Op: OpRet},
			}}},
		}},
	}
	if err := m.Verify(); err == nil {
		t.Fatal("call to unknown function verified")
	}
}

func TestVerifyRejectsArityMismatch(t *testing.T) {
	mb := NewModule("bad")
	callee := mb.NewFunc("callee", 2)
	callee.RetVoid()
	main := mb.NewFunc("main", 0)
	x := main.Const(1)
	main.CallVoid("callee", x) // one arg, callee wants two
	main.RetVoid()
	mb.SetEntry("main")
	if _, err := mb.Build(); err == nil {
		t.Fatal("arity mismatch verified")
	}
}

func TestVerifyRejectsDuplicateSymbols(t *testing.T) {
	mb := NewModule("bad")
	f1 := mb.NewFunc("f", 0)
	f1.RetVoid()
	f2 := mb.NewFunc("f", 0)
	f2.RetVoid()
	mb.SetEntry("f")
	if _, err := mb.Build(); err == nil {
		t.Fatal("duplicate symbol verified")
	}
}

func TestVerifyRejectsBadBranchTarget(t *testing.T) {
	m := &Module{
		Name:  "bad",
		Entry: "main",
		Funcs: []*Function{{
			Name: "main", Protected: true,
			Blocks: []*Block{{Instrs: []Instr{{Op: OpBr, Target: 9}}}},
		}},
	}
	if err := m.Verify(); err == nil {
		t.Fatal("bad branch target verified")
	}
}

func TestVerifyRejectsFuncPtrWithoutInit(t *testing.T) {
	mb := NewModule("bad")
	mb.m.Globals = append(mb.m.Globals, &Global{Name: "fp", Size: 8, Kind: GlobalFuncPtr})
	f := mb.NewFunc("main", 0)
	f.RetVoid()
	mb.SetEntry("main")
	if _, err := mb.Build(); err == nil {
		t.Fatal("funcptr without InitFunc verified")
	}
}

func TestEmitAfterTerminatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mb := NewModule("bad")
	f := mb.NewFunc("f", 0)
	f.RetVoid()
	f.RetVoid()
}

func TestControlFlowBuilder(t *testing.T) {
	mb := NewModule("loop")
	f := mb.NewFunc("main", 0)
	i := f.Const(0)
	n := f.Const(10)
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	f.SetBlock(0)
	f.Br(head)
	f.SetBlock(head)
	cond := f.Bin(OpLt, i, n)
	f.CondBr(cond, body, exit)
	f.SetBlock(body)
	one := f.Const(1)
	f.BinTo(i, OpAdd, i, one)
	f.Br(head)
	f.SetBlock(exit)
	f.Output(i)
	f.RetVoid()
	mb.SetEntry("main")
	if _, err := mb.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalKinds(t *testing.T) {
	mb := NewModule("globals")
	mb.AddGlobal("table", 64, 1, 2, 3)
	mb.AddDefaultParam("default_mode", 7)
	f := mb.NewFunc("handler", 1)
	f.RetVoid()
	mb.AddFuncPtr("handler_ptr", "handler")
	main := mb.NewFunc("main", 0)
	main.RetVoid()
	mb.SetEntry("main")
	m, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g := m.Global("default_mode"); g == nil || g.Kind != GlobalDefaultParam {
		t.Fatal("default param global wrong")
	}
	if g := m.Global("handler_ptr"); g == nil || g.InitFunc != "handler" {
		t.Fatal("funcptr global wrong")
	}
}

func TestStringDump(t *testing.T) {
	m := buildAddModule(t)
	s := m.String()
	for _, want := range []string{"module addtest", "func add", "call add", "ret r2", "output"} {
		if !strings.Contains(s, want) {
			t.Errorf("dump missing %q:\n%s", want, s)
		}
	}
}

func TestInstrStringForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpConst, Dst: 1, Imm: 255}, "r1 = const 0xff"},
		{Instr{Op: OpLoad, Dst: 2, A: 3, Off: -8}, "r2 = load [r3-8]"},
		{Instr{Op: OpStore, A: 1, Off: 16, B: 2}, "store [r1+16], r2"},
		{Instr{Op: OpCall, Dst: NoReg, A: 4, Args: []Reg{1}}, "call *r4(r1)"},
		{Instr{Op: OpCall, Dst: NoReg, Sym: "f", Tail: true}, "tail call f()"},
		{Instr{Op: OpCondBr, A: 1, Target: 2, Else: 3}, "condbr r1, b2, b3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTailCallEmitsRet(t *testing.T) {
	mb := NewModule("tail")
	g := mb.NewFunc("g", 0)
	g.RetVoid()
	f := mb.NewFunc("main", 0)
	f.TailCall("g")
	mb.SetEntry("main")
	m, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	blocks := m.Func("main").Blocks
	last := blocks[0].Instrs
	if len(last) != 2 || !last[0].Tail || last[1].Op != OpRet {
		t.Fatalf("tail call lowering wrong: %v", last)
	}
}
