// Command r2cattack is the security harness: it regenerates the paper's
// security artifacts — Table 3 (defense comparison against ROP, JIT-ROP,
// PIROP and AOCR), the BTRA guessing probabilities of Section 7.2.1, the
// crash side-channel demonstration of Section 7.3, and the design-decision
// ablations of Sections 4.1 and 5.2 (dynamic BTRA sets, callee-chosen BTRA
// sets, the naive in-data BTDP array).
//
// Usage:
//
//	r2cattack [-trials N] [-metrics-out FILE] [-trace FILE] [-trace-format jsonl|chrome]
//	          [-listen ADDR] [-forensics] [-flight N] [-incidents-out FILE] [-alert-rules FILE]
//	          [-sample-every N] [-timeseries-out FILE]
//	          [-baseline FILE] [-compare FILE] [-compare-warn]
//	          <table3|prob|sidechannel|ablations|aocr|all>
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"r2c/internal/attack"
	"r2c/internal/bench"
	"r2c/internal/defense"
	"r2c/internal/exec"
	"r2c/internal/incident"
	"r2c/internal/mvee"
	"r2c/internal/perf"
	"r2c/internal/telemetry"
	"r2c/internal/vm"
)

// allExperiments is the order `all` runs them; it doubles as the known-name
// list for upfront validation.
var allExperiments = []string{"table3", "prob", "sidechannel", "sidechannel-hardened", "bruteforce", "ablations", "aocr", "mvee"}

func main() {
	trials := flag.Int("trials", 10, "Monte-Carlo trials per defense/attack cell")
	jobs := flag.Int("jobs", 0, "parallel trials/simulation cells (0 = GOMAXPROCS, 1 = serial); results are identical at any width")
	overheads := flag.Bool("overheads", false, "also measure Table 3 overhead column (slow)")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot (probe/detection/outcome counters) to FILE on exit")
	traceOut := flag.String("trace", "", "write structured events (traps, faults, probes, outcomes) and spans to FILE")
	traceFormat := flag.String("trace-format", telemetry.TraceJSONL, "trace file format: jsonl or chrome (chrome://tracing / Perfetto)")
	listen := flag.String("listen", "", "serve the live ops endpoint (/metrics, /healthz, /progress, /debug/pprof) on ADDR, e.g. :8642")
	forensics := flag.Bool("forensics", false, "with table3: print the per-trial trap provenance table (which trap class caught each probe) and the incident correlation summary")
	flightCap := flag.Int("flight", 0, "per-process flight-recorder depth in events (0 = off; -forensics defaults to 64); recent control flow is attached to every incident record")
	incidentsOut := flag.String("incidents-out", "", "write the incident timeline (trap/fault/divergence records with flight snapshots) as JSON to FILE on exit")
	alertRules := flag.String("alert-rules", "", "evaluate the declarative alert rules in FILE against the metrics registry at exit (and live on /alerts); any firing rule fails the run")
	sampleEvery := flag.Int("sample-every", 0, "time-series sampling stride in completed simulation cells (0 = every 16); only cell-executing paths sample (e.g. -overheads) — Monte-Carlo-only scenarios leave the rings empty")
	timeseriesOut := flag.String("timeseries-out", "", "write the sampled time-series rings as JSON to FILE on exit")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell wall-clock watchdog deadline (0 = none); hung cells fail instead of hanging the campaign")
	cellFuel := flag.Uint64("cell-fuel", 0, "per-cell VM instruction allowance (0 = the default budget)")
	retries := flag.Int("retries", 0, "re-attempts per failed cell, each with a seed derived from the cell's content key")
	retryBackoff := flag.Duration("retry-backoff", 0, "base delay before the first retry of a cell, doubling per attempt")
	journalPath := flag.String("journal", "", "persist completed cell results to FILE (JSONL, keyed by build key + machine)")
	resume := flag.Bool("resume", false, "replay cells already present in the journal instead of re-executing them")
	faults := flag.String("faults", "", "fault-injection plan CELL[@ATTEMPT]:KIND,... with KIND one of build-fail, exec-fail, panic, stall, slow[=DURATION]; CELL may be * (testing aid)")
	baselineOut := flag.String("baseline", "", "write the run's performance numbers as a baseline to FILE (BENCH_<experiment>.json)")
	compare := flag.String("compare", "", "re-run the baseline in FILE (adopting its trials unless overridden) and exit nonzero on regression")
	compareWarn := flag.Bool("compare-warn", false, "report -compare timing regressions without failing (CI warn-only mode)")
	perfNoise := flag.Float64("perf-noise", 0, "-compare timing noise threshold in percent (0 = default 100)")
	perfNoiseDet := flag.Float64("perf-noise-det", 0, "-compare deterministic drift threshold in percent (0 = default 1)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: r2cattack [-trials N] [-metrics-out FILE] [-trace FILE] [-trace-format jsonl|chrome] [-listen ADDR] [-forensics] [-flight N] [-incidents-out FILE] [-alert-rules FILE] [-baseline FILE] [-compare FILE] [-compare-warn] <table3|prob|sidechannel|sidechannel-hardened|ablations|aocr|mvee|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	// With -compare the experiment and its trial count default to what the
	// baseline recorded; explicit flags and a positional argument win.
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	var oldBase *perf.Baseline
	if *compare != "" {
		var err error
		oldBase, err = perf.Load(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "r2cattack: %v\n", err)
			os.Exit(1)
		}
		if v, ok := oldBase.Params["trials"]; ok && !setFlags["trials"] {
			if n, err := strconv.Atoi(v); err == nil {
				*trials = n
			}
		}
	}
	if flag.NArg() != 1 && !(flag.NArg() == 0 && oldBase != nil) {
		flag.Usage()
		os.Exit(2)
	}
	want := flag.Arg(0)
	if want == "" && oldBase != nil {
		want = oldBase.Label
	}

	names := []string{want}
	if want == "all" {
		names = allExperiments
	} else if !known(want) {
		fmt.Fprintf(os.Stderr, "r2cattack: unknown experiment %q\nknown experiments: all", want)
		for _, n := range allExperiments {
			fmt.Fprintf(os.Stderr, " %s", n)
		}
		fmt.Fprintf(os.Stderr, "\n")
		os.Exit(2)
	}

	// -forensics implies a flight recorder: the provenance table is most
	// useful with the control-flow tail that led to each detonation.
	if *forensics && !setFlags["flight"] {
		*flightCap = 64
	}
	// Alert rules are parsed before any work runs so a malformed file fails
	// fast, like an unknown experiment name.
	var rules []telemetry.AlertRule
	if *alertRules != "" {
		var err2 error
		rules, err2 = telemetry.LoadAlertRules(*alertRules)
		if err2 != nil {
			fmt.Fprintf(os.Stderr, "r2cattack: %v\n", err2)
			os.Exit(2)
		}
	}

	start := time.Now()
	prov := perf.Collect()
	sinks, err := telemetry.OpenSinksOpts(telemetry.SinkOptions{
		MetricsOut:     *metricsOut,
		TraceOut:       *traceOut,
		TraceFormat:    *traceFormat,
		FlightCap:      *flightCap,
		EnsureRegistry: *listen != "" || *baselineOut != "" || *compare != "" || *alertRules != "",
		Meta:           prov.Meta(),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "r2cattack: %v\n", err)
		os.Exit(1)
	}
	// One engine for the whole invocation; the attack package additionally
	// routes every victim/reference build through its cache, which collapses
	// the Monte-Carlo campaigns' repeated same-seed rebuilds (worker-pool
	// restarts, persistent retries) to one compile+link each.
	eng := exec.New(*jobs, sinks.Obs)
	attack.UseBuildCache(eng.Cache)
	// Time-series rings are cheap but not free; allocate them only when
	// something will read them (a file, the ops endpoint, or alert rules).
	var series *telemetry.SeriesSet
	if *timeseriesOut != "" || *sampleEvery > 0 || *listen != "" || *alertRules != "" {
		series = telemetry.NewSeriesSet(0, sinks.Obs)
		eng.Series = series
		eng.SampleEvery = *sampleEvery
	}
	// One incident log for the whole invocation: exec cells, attack
	// scenarios and the MVEE demo all append to it, and the ops endpoint
	// serves it live under /incidents.
	var ilog *incident.Log
	if *incidentsOut != "" || *forensics || *listen != "" || *alertRules != "" || *flightCap > 0 {
		ilog = incident.NewLog()
	}
	eng.Incidents = ilog
	attack.UseIncidentLog(ilog)
	eng.CellTimeout = *cellTimeout
	eng.CellFuel = *cellFuel
	eng.Retries = *retries
	eng.Backoff = *retryBackoff
	plan, err := exec.ParseFaultPlan(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "r2cattack: %v\n", err)
		os.Exit(2)
	}
	eng.Faults = plan
	if *resume && *journalPath == "" {
		*journalPath = "r2c-run.journal"
	}
	if *journalPath != "" {
		j, jerr := exec.OpenJournal(*journalPath)
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "r2cattack: %v\n", jerr)
			os.Exit(1)
		}
		if *resume && j.Len() > 0 {
			fmt.Printf("[resuming: %d journaled cells in %s]\n", j.Len(), *journalPath)
		}
		eng.Journal = j
	}
	// Ctrl-C/SIGTERM cancels the campaign context: queued trials never
	// start and in-flight ones run their watchdogs down.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	opt := bench.Options{Scale: 4, Runs: 1, Out: os.Stdout, Obs: sinks.Obs, Jobs: *jobs, Eng: eng, Ctx: ctx}
	var ops *telemetry.OpsServer
	if *listen != "" {
		ops, err = telemetry.ServeOpsSources(*listen, telemetry.OpsSources{
			Registry:  sinks.Obs.Reg(),
			Progress:  func() any { return eng.Progress() },
			Incidents: func() any { return ilog.Timeline() },
			Series:    series,
			Alerts: func() any {
				return telemetry.EvalAlertsSeries(rules, sinks.Obs.Reg().Snapshot(), series.Snapshot(nil, 0), time.Since(start))
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "r2cattack: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[ops endpoint listening on %s]\n", ops.URL())
	}

	run := func(name string) error {
		defer sinks.Obs.Timer("attack.experiment", "name", name).Time()()
		switch name {
		case "table3":
			rows, err := bench.Table3(opt, *trials, *overheads)
			if err == nil && *forensics {
				bench.PrintForensics(opt, rows)
				incident.WriteSummary(os.Stdout, incident.Correlate(ilog.Records()))
			}
			return err
		case "prob":
			_, err := bench.Prob(opt, 6**trials)
			return err
		case "sidechannel":
			_, err := bench.SideChannel(opt)
			return err
		case "ablations":
			return ablations()
		case "aocr":
			return aocrDemo(sinks.Obs)
		case "mvee":
			return mveeDemo(ilog)
		case "sidechannel-hardened":
			return sideChannelHardened(sinks.Obs)
		case "bruteforce":
			return bruteforce()
		}
		return fmt.Errorf("unknown experiment %q", name)
	}

	exitCode := 0
	for _, n := range names {
		if err := run(n); err != nil {
			// Partial cell failures degrade to a summary plus a failing
			// exit code; hard errors and cancellation abort as before.
			if be, ok := exec.AsBatchError(err); ok && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "r2cattack %s: partial results: %s\n", n, be.Summary())
				exitCode = 1
				continue
			}
			ops.Close()
			eng.Journal.Close()
			sinks.Close()
			fmt.Fprintf(os.Stderr, "r2cattack %s: %v\n", n, err)
			os.Exit(1)
		}
	}
	if *baselineOut != "" || oldBase != nil {
		snap := sinks.Obs.Reg().Snapshot()
		params := map[string]string{"trials": strconv.Itoa(*trials)}
		fresh := perf.FromSnapshot(want, snap, prov, params)
		if *baselineOut != "" {
			if err := fresh.Save(*baselineOut); err != nil {
				fmt.Fprintf(os.Stderr, "r2cattack: %v\n", err)
				exitCode = 1
			} else {
				fmt.Printf("[baseline %q written to %s]\n", want, *baselineOut)
			}
		}
		if oldBase != nil {
			rep := perf.Judge(oldBase, fresh, perf.Thresholds{
				DeterministicPct: *perfNoiseDet,
				TimingPct:        *perfNoise,
				TimingAdvisory:   *compareWarn,
			})
			rep.WriteTable(os.Stdout)
			if rep.Failed() {
				fmt.Fprintf(os.Stderr, "r2cattack: performance regressed vs %s\n", *compare)
				exitCode = 1
			}
		}
	}
	if *incidentsOut != "" {
		f, ferr := os.Create(*incidentsOut)
		if ferr == nil {
			ferr = ilog.WriteJSON(f)
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "r2cattack: incidents: %v\n", ferr)
			exitCode = 1
		} else {
			fmt.Printf("[%d incident records written to %s]\n", ilog.Len(), *incidentsOut)
		}
	}
	if *timeseriesOut != "" {
		f, ferr := os.Create(*timeseriesOut)
		if ferr == nil {
			ferr = series.WriteJSON(f)
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "r2cattack: timeseries: %v\n", ferr)
			exitCode = 1
		} else {
			fmt.Printf("[time-series rings written to %s]\n", *timeseriesOut)
		}
	}
	if len(rules) > 0 {
		states := telemetry.EvalAlertsSeries(rules, sinks.Obs.Reg().Snapshot(), series.Snapshot(nil, 0), time.Since(start))
		telemetry.WriteAlertTable(os.Stdout, states)
		if n := telemetry.FiringCount(states); n > 0 {
			fmt.Fprintf(os.Stderr, "r2cattack: %d alert rule(s) firing\n", n)
			exitCode = 1
		}
	}
	fmt.Println(eng.Footer("r2cattack"))
	// Shut the ops server down before the sinks so no scrape can race the
	// final metrics snapshot; Close drains in-flight requests and joins the
	// serve goroutine.
	if err := ops.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "r2cattack: ops shutdown: %v\n", err)
	}
	if err := eng.Journal.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "r2cattack: %v\n", err)
		exitCode = 1
	}
	if err := sinks.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "r2cattack: %v\n", err)
		os.Exit(1)
	}
	os.Exit(exitCode)
}

func known(name string) bool {
	for _, n := range allExperiments {
		if n == name {
			return true
		}
	}
	return false
}

// mveeDemo runs the Section 7.3 MVEE extension: two R2C variants in
// lockstep; a replicated memory corruption diverges and is detected.
func mveeDemo(ilog *incident.Log) error {
	fmt.Println("MVEE extension (Section 7.3): two diversified variants in lockstep")
	e, err := mvee.New(attack.Victim(), defense.R2CFull(), 2, 42, vm.EPYCRome())
	if err != nil {
		return err
	}
	e.Incidents = ilog
	v, err := e.Run(0, 0)
	if err != nil {
		return err
	}
	fmt.Printf("  benign run: diverged=%v trapped=%v (variants agree bit-for-bit)\n", v.Diverged, v.Trapped)

	e2, err := mvee.New(attack.Victim(), defense.R2CFull(), 2, 42, vm.EPYCRome())
	if err != nil {
		return err
	}
	e2.Incidents = ilog
	img := e2.Variants[0].Proc.Img
	e2.CorruptAll(img.DataSyms[attack.SymSecretKey].Addr, attack.MagicArg)
	e2.CorruptAll(img.DataSyms[attack.SymAdminPtr].Addr, img.Funcs[attack.SymSecretFunc].Start)
	v2, err := e2.Run(0, 0)
	if err != nil {
		return err
	}
	fmt.Printf("  corrupted run: detected=%v (%s)\n", v2.Detected(), v2.Reason)
	return nil
}

// sideChannelHardened reruns the Section 7.3 side channel against the
// proposed BTRA consistency checks.
func sideChannelHardened(obs *telemetry.Observer) error {
	cfg := defense.R2CFull()
	cfg.Name = "r2c-btra-checks"
	cfg.CheckBTRAsOnReturn = true
	detections := 0
	trials := 30
	for seed := uint64(1); seed <= uint64(trials); seed++ {
		s, err := attack.NewScenarioObserved(cfg, seed, obs)
		if err != nil {
			return err
		}
		cands, err := s.RACandidates()
		if err != nil {
			return err
		}
		// One zeroing probe per campaign, as the side channel does; the
		// topmost candidate is always a pre-offset BTRA, the kind the
		// post-return check samples (one random slot per call site, so
		// each probe is caught with probability ≈ 1/pre).
		if err := s.Write(cands[len(cands)-1].Addr, 0); err != nil {
			return err
		}
		if o := s.Resume(); o == attack.Detected {
			detections++
		}
	}
	fmt.Printf("BTRA consistency checks (Section 7.3 hardening): %d/%d zeroing probes detected (expected ≈ trials/pre)\n",
		detections, trials)
	return nil
}

// bruteforce runs the Section 4.1 Blind ROP and Section 7.2.3 heap feng
// shui experiments.
func bruteforce() error {
	fmt.Println("Blind ROP stop-gadget scan against a restarting worker (Section 4.1):")
	for _, cfg := range []defense.Config{defense.Off(), defense.R2CFull()} {
		r, err := attack.BlindROP(cfg, 31, 12)
		if err != nil {
			return err
		}
		fmt.Printf("  vs %-10s: %d probes, gadget found=%v, booby-trap alarms=%d\n",
			cfg.Name, r.Probes, r.FoundGadget, r.Detections)
	}
	fmt.Println("heap feng shui pairing filter (Section 7.2.3):")
	r, err := attack.FengShui(defense.R2CFull(), 5, 4096)
	if err != nil {
		return err
	}
	fmt.Printf("  vs r2c-full  : kept %d paired pointers, %d safe, %d still BTDPs\n",
		r.PairsFound, r.SafePicks, r.BTDPPicks)
	return nil
}

// aocrDemo narrates one full AOCR attack against the unprotected baseline
// and against full R2C.
func aocrDemo(obs *telemetry.Observer) error {
	fmt.Println("AOCR whole-function-reuse demo (Section 2.3 attack chain)")
	for _, cfg := range []defense.Config{defense.Off(), defense.R2CFull()} {
		tally := attack.Tally{}
		for seed := uint64(1); seed <= 8; seed++ {
			s, err := attack.NewScenarioObserved(cfg, seed, obs)
			if err != nil {
				return err
			}
			tally.Add(s.AOCR())
		}
		fmt.Printf("  vs %-10s: %v\n", cfg.Name, &tally)
	}
	return nil
}

// ablations demonstrates the design-decision attacks.
func ablations() error {
	fmt.Println("Design-decision ablations (Sections 4.1, 5.2)")

	// Property B: dynamic BTRA sets fall to two observations.
	bad := defense.R2CFull()
	bad.Name = "r2c-dynamic-btras"
	bad.InsecureDynamicBTRAs = true
	for _, cfg := range []defense.Config{defense.R2CFull(), bad} {
		rem, isRA, err := attack.DynamicBTRAAttack(cfg, 11)
		if err != nil {
			return err
		}
		fmt.Printf("  property B  vs %-22s: %2d candidates after intersection, RA identified: %v\n",
			cfg.Name, rem, isRA)
	}

	// Property C: per-callee BTRA sets fall to a two-call-site diff.
	bad2 := defense.R2CFull()
	bad2.Name = "r2c-callee-btras"
	bad2.InsecureCalleeBTRAs = true
	for _, cfg := range []defense.Config{defense.R2CFull(), bad2} {
		uniq, allRA, err := attack.CalleeBTRAAttack(cfg, 13)
		if err != nil {
			return err
		}
		fmt.Printf("  property C  vs %-22s: %2d values differ between call sites, all real RAs: %v\n",
			cfg.Name, uniq, allRA)
	}

	// Figure 5: the naive in-data BTDP array lets the attacker filter
	// BTDPs out; the hardened layout does not.
	naive := defense.R2CFull()
	naive.Name = "r2c-naive-btdp-array"
	naive.BTDPNaiveDataArray = true
	for _, cfg := range []defense.Config{defense.R2CFull(), naive} {
		kept, keptBTDPs, err := attack.NaiveBTDPArrayAttack(cfg, 17)
		if err != nil {
			return err
		}
		fmt.Printf("  figure 5    vs %-22s: attacker keeps %2d heap pointers, %2d of them are still BTDPs\n",
			cfg.Name, kept, keptBTDPs)
	}
	return nil
}
