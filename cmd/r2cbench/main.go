// Command r2cbench is the performance harness: it regenerates the paper's
// performance artifacts — Table 1 (component overheads), Table 2 (call
// frequencies), Figure 6 (full R2C on four machines), the webserver
// throughput experiment (Section 6.2.4), the memory-overhead experiment
// (Section 6.2.5), the offset-invariant addressing measurement (Section
// 6.2.1), the AVX-512 variant (Section 7.1), and the scalability check
// (Section 6.3).
//
// Usage:
//
//	r2cbench [-scale N] [-runs N] <table1|table2|figure6|webserver|memory|oia|avx512|scale|all>
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"r2c/internal/bench"
)

func main() {
	scale := flag.Int("scale", 1, "workload scale divisor (1 = full calibrated size)")
	runs := flag.Int("runs", 3, "differently-seeded builds per measurement (median)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: r2cbench [-scale N] [-runs N] <experiment>\n")
		fmt.Fprintf(os.Stderr, "experiments: table1 table2 figure6 webserver memory oia avx512 scale ablations all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	opt := bench.Options{Scale: *scale, Runs: *runs, Out: os.Stdout}

	run := func(name string) error {
		start := time.Now()
		var err error
		switch name {
		case "table1":
			_, err = bench.Table1(opt)
		case "table2":
			_, err = bench.Table2(opt)
		case "figure6":
			_, err = bench.Figure6(opt)
		case "webserver":
			_, err = bench.Webserver(opt)
		case "memory":
			_, err = bench.Memory(opt)
		case "oia":
			_, err = bench.OIA(opt)
		case "avx512":
			_, err = bench.AVX512(opt)
		case "scale":
			_, err = bench.Scale(opt, 2000)
		case "ablations":
			_, err = bench.Ablations(opt)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		if err == nil {
			fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
		return err
	}

	names := []string{flag.Arg(0)}
	if flag.Arg(0) == "all" {
		names = []string{"table1", "table2", "figure6", "webserver", "memory", "oia", "avx512", "scale", "ablations"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "r2cbench %s: %v\n", n, err)
			os.Exit(1)
		}
	}
}
