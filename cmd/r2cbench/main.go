// Command r2cbench is the performance harness: it regenerates the paper's
// performance artifacts — Table 1 (component overheads), Table 2 (call
// frequencies), Figure 6 (full R2C on four machines), the webserver
// throughput experiment (Section 6.2.4), the memory-overhead experiment
// (Section 6.2.5), the offset-invariant addressing measurement (Section
// 6.2.1), the AVX-512 variant (Section 7.1), and the scalability check
// (Section 6.3).
//
// Usage:
//
//	r2cbench [-scale N] [-runs N] [-metrics-out FILE] [-trace FILE] [-trace-format jsonl|chrome]
//	         [-listen ADDR] [-profile] [-profile-format table|folded] [-cell-timeout D]
//	         [-cell-fuel N] [-retries N] [-journal FILE] [-resume] [-faults PLAN]
//	         [-flight N] [-incidents-out FILE] [-alert-rules FILE]
//	         [-sample-every N] [-timeseries-out FILE]
//	         [-baseline FILE] [-compare FILE] [-compare-warn] <experiment>
//
// -baseline records the run's performance numbers as a committed baseline
// (BENCH_<label>.json); -compare re-runs a committed baseline's experiment
// and exits nonzero if any metric regressed beyond the noise thresholds.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"r2c/internal/bench"
	"r2c/internal/exec"
	"r2c/internal/incident"
	"r2c/internal/perf"
	"r2c/internal/telemetry"
)

// experiments maps every known experiment name to its driver, in the order
// `all` runs them.
var experiments = []struct {
	name string
	run  func(bench.Options) error
}{
	{"table1", func(o bench.Options) error { _, err := bench.Table1(o); return err }},
	{"table2", func(o bench.Options) error { _, err := bench.Table2(o); return err }},
	{"figure6", func(o bench.Options) error { _, err := bench.Figure6(o); return err }},
	{"webserver", func(o bench.Options) error { _, err := bench.Webserver(o); return err }},
	{"memory", func(o bench.Options) error { _, err := bench.Memory(o); return err }},
	{"oia", func(o bench.Options) error { _, err := bench.OIA(o); return err }},
	{"avx512", func(o bench.Options) error { _, err := bench.AVX512(o); return err }},
	{"scale", func(o bench.Options) error { _, err := bench.Scale(o, 2000); return err }},
	{"ablations", func(o bench.Options) error { _, err := bench.Ablations(o); return err }},
	{"diversity", func(o bench.Options) error { _, err := bench.Diversity(o); return err }},
}

func knownExperiments() []string {
	names := make([]string, 0, len(experiments)+1)
	for _, e := range experiments {
		names = append(names, e.name)
	}
	return append(names, "all")
}

// defaultJournal is where -resume looks when -journal is not given.
const defaultJournal = "r2c-run.journal"

func main() {
	scale := flag.Int("scale", 1, "workload scale divisor (1 = full calibrated size)")
	runs := flag.Int("runs", 3, "differently-seeded builds per measurement (median)")
	jobs := flag.Int("jobs", 0, "parallel simulation cells (0 = GOMAXPROCS, 1 = serial); results are identical at any width")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot to FILE on exit")
	traceOut := flag.String("trace", "", "write structured events and pipeline spans to FILE")
	traceFormat := flag.String("trace-format", telemetry.TraceJSONL, "trace file format: jsonl or chrome (chrome://tracing / Perfetto)")
	listen := flag.String("listen", "", "serve the live ops endpoint (/metrics, /healthz, /progress, /debug/pprof) on ADDR, e.g. :8642")
	profile := flag.Bool("profile", false, "collect per-function simulated-cycle profiles and print the hot-function table")
	top := flag.Int("top", 15, "rows in the -profile hot-function table")
	profileFormat := flag.String("profile-format", "table", "-profile output: table (flat hot functions) or folded (flamegraph.pl/speedscope folded stacks)")
	baselineOut := flag.String("baseline", "", "write the run's performance numbers as a baseline to FILE (BENCH_<experiment>.json)")
	compare := flag.String("compare", "", "re-run the baseline in FILE (adopting its scale/runs unless overridden) and exit nonzero on regression")
	compareWarn := flag.Bool("compare-warn", false, "report -compare timing regressions without failing (CI warn-only mode)")
	perfNoise := flag.Float64("perf-noise", 0, "-compare timing noise threshold in percent (0 = default 100)")
	perfNoiseDet := flag.Float64("perf-noise-det", 0, "-compare deterministic drift threshold in percent (0 = default 1)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell wall-clock watchdog deadline (0 = none); hung cells fail instead of hanging the sweep")
	cellFuel := flag.Uint64("cell-fuel", 0, "per-cell VM instruction allowance (0 = the default budget); runaway cells fail instead of hanging")
	retries := flag.Int("retries", 0, "re-attempts per failed cell, each with a seed derived from the cell's content key")
	retryBackoff := flag.Duration("retry-backoff", 0, "base delay before the first retry of a cell, doubling per attempt")
	journalPath := flag.String("journal", "", "persist completed cell results to FILE (JSONL, keyed by build key + machine)")
	resume := flag.Bool("resume", false, "replay cells already present in the journal instead of re-executing them (implies -journal "+defaultJournal+" unless set)")
	faults := flag.String("faults", "", "fault-injection plan CELL[@ATTEMPT]:KIND,... with KIND one of build-fail, exec-fail, panic, stall, slow[=DURATION]; CELL may be * (testing aid)")
	flightCap := flag.Int("flight", 0, "per-process flight-recorder depth in events (0 = off); recent control flow is attached to every incident record")
	incidentsOut := flag.String("incidents-out", "", "write the incident timeline (trap/fault records with flight snapshots) as JSON to FILE on exit")
	alertRules := flag.String("alert-rules", "", "evaluate the declarative alert rules in FILE against the metrics registry at exit (and live on /alerts); any firing rule fails the run")
	sampleEvery := flag.Int("sample-every", 0, "time-series sampling stride in completed cells (0 = every 16); samples feed /timeseries, -timeseries-out and windowed alert rules")
	timeseriesOut := flag.String("timeseries-out", "", "write the deterministic time-series rings as JSON to FILE on exit (byte-identical at any -jobs width)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: r2cbench [-scale N] [-runs N] [-metrics-out FILE] [-trace FILE] [-trace-format jsonl|chrome] [-listen ADDR] [-profile] [-profile-format table|folded] [-cell-timeout D] [-cell-fuel N] [-retries N] [-journal FILE] [-resume] [-faults PLAN] [-flight N] [-incidents-out FILE] [-alert-rules FILE] [-sample-every N] [-timeseries-out FILE] [-baseline FILE] [-compare FILE] [-compare-warn] <experiment>\n")
		fmt.Fprintf(os.Stderr, "experiments:")
		for _, n := range knownExperiments() {
			fmt.Fprintf(os.Stderr, " %s", n)
		}
		fmt.Fprintf(os.Stderr, "\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *profileFormat != "table" && *profileFormat != "folded" {
		fmt.Fprintf(os.Stderr, "r2cbench: unknown -profile-format %q (want table or folded)\n", *profileFormat)
		os.Exit(2)
	}

	// With -compare the experiment and its parameters default to what the
	// baseline recorded, so `r2cbench -compare BENCH_figure6.json` alone
	// re-runs the baseline's exact configuration. Explicit flags win.
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	var oldBase *perf.Baseline
	if *compare != "" {
		var err error
		oldBase, err = perf.Load(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "r2cbench: %v\n", err)
			os.Exit(1)
		}
		adoptInt := func(name string, dst *int) {
			if setFlags[name] {
				return
			}
			if v, ok := oldBase.Params[name]; ok {
				if n, err := strconv.Atoi(v); err == nil {
					*dst = n
				}
			}
		}
		adoptInt("scale", scale)
		adoptInt("runs", runs)
	}
	if flag.NArg() != 1 && !(flag.NArg() == 0 && oldBase != nil) {
		flag.Usage()
		os.Exit(2)
	}

	// Validate the experiment name before doing any work, so a typo fails
	// fast instead of after minutes of earlier experiments.
	want := flag.Arg(0)
	if want == "" && oldBase != nil {
		want = oldBase.Label
	}
	var selected []struct {
		name string
		run  func(bench.Options) error
	}
	if want == "all" {
		selected = experiments
	} else {
		for _, e := range experiments {
			if e.name == want {
				selected = append(selected, e)
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "r2cbench: unknown experiment %q\nknown experiments:", want)
			for _, n := range knownExperiments() {
				fmt.Fprintf(os.Stderr, " %s", n)
			}
			fmt.Fprintf(os.Stderr, "\n")
			os.Exit(2)
		}
	}

	plan, err := exec.ParseFaultPlan(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "r2cbench: %v\n", err)
		os.Exit(2)
	}

	// Alert rules are parsed before any work runs so a malformed file fails
	// fast, like an unknown experiment name.
	var rules []telemetry.AlertRule
	if *alertRules != "" {
		var rerr error
		rules, rerr = telemetry.LoadAlertRules(*alertRules)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "r2cbench: %v\n", rerr)
			os.Exit(2)
		}
	}

	invocationStart := time.Now()
	prov := perf.Collect()
	sinks, err := telemetry.OpenSinksOpts(telemetry.SinkOptions{
		MetricsOut:  *metricsOut,
		TraceOut:    *traceOut,
		TraceFormat: *traceFormat,
		Profile:     *profile,
		FlightCap:   *flightCap,
		// The ops endpoint serves /metrics from the registry, and baseline
		// recording/comparison harvests one, so force a registry even when
		// no file sink was requested.
		EnsureRegistry: *listen != "" || *baselineOut != "" || *compare != "" || *alertRules != "",
		Meta:           prov.Meta(),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "r2cbench: %v\n", err)
		os.Exit(1)
	}
	// One engine for the whole invocation: experiments that rebuild the same
	// (module, config, seed) — Figure 6's four machines, the ablation sweeps'
	// shared baselines — hit the content-addressed build cache. The engine
	// also carries the fault-tolerance policy every cell runs under.
	eng := exec.New(*jobs, sinks.Obs)
	// Perf runs normally see no incidents — any trap or fault during a
	// measurement is itself a red flag the timeline should record.
	var ilog *incident.Log
	if *incidentsOut != "" || *listen != "" || *alertRules != "" || *flightCap > 0 {
		ilog = incident.NewLog()
	}
	eng.Incidents = ilog
	eng.CellTimeout = *cellTimeout
	eng.CellFuel = *cellFuel
	eng.Retries = *retries
	eng.Backoff = *retryBackoff
	eng.Faults = plan
	// Time-series rings: wired whenever something will read them — the ops
	// endpoint, the -timeseries-out artifact, or a windowed alert rule.
	var series *telemetry.SeriesSet
	if *timeseriesOut != "" || *sampleEvery > 0 || *listen != "" || *alertRules != "" {
		series = telemetry.NewSeriesSet(0, sinks.Obs)
		eng.Series = series
		eng.SampleEvery = *sampleEvery
	}

	if *resume && *journalPath == "" {
		*journalPath = defaultJournal
	}
	if *journalPath != "" {
		j, err := exec.OpenJournal(*journalPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "r2cbench: %v\n", err)
			os.Exit(1)
		}
		if *resume && j.Len() > 0 {
			fmt.Printf("[resuming: %d journaled cells in %s]\n", j.Len(), *journalPath)
		}
		eng.Journal = j
	}

	// Ctrl-C/SIGTERM cancels the sweep context: in-flight cells run their
	// watchdogs down, queued cells never start, and the journal keeps what
	// finished — exactly what -resume picks up.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var ops *telemetry.OpsServer
	if *listen != "" {
		ops, err = telemetry.ServeOpsSources(*listen, telemetry.OpsSources{
			Registry:  sinks.Obs.Reg(),
			Progress:  func() any { return eng.Progress() },
			Incidents: func() any { return ilog.Timeline() },
			Alerts: func() any {
				return telemetry.EvalAlertsSeries(rules, sinks.Obs.Reg().Snapshot(), series.Snapshot(nil, 0), time.Since(invocationStart))
			},
			Series: series,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "r2cbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[ops endpoint listening on %s]\n", ops.URL())
	}
	opt := bench.Options{Scale: *scale, Runs: *runs, Out: os.Stdout, Obs: sinks.Obs, Jobs: *jobs, Eng: eng, Ctx: ctx}

	exitCode := 0
	for _, e := range selected {
		start := time.Now()
		stop := sinks.Obs.Timer("bench.experiment", "name", e.name).Time()
		err := e.run(opt)
		stop()
		if err != nil {
			// A partial failure (some cells died, the rest produced a
			// table) degrades to a summary plus a failing exit code; hard
			// errors and cancellation still abort the invocation.
			if be, ok := exec.AsBatchError(err); ok && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "r2cbench %s: partial results: %s\n", e.name, be.Summary())
				exitCode = 1
			} else {
				ops.Close()
				eng.Journal.Close()
				sinks.Close()
				fmt.Fprintf(os.Stderr, "r2cbench %s: %v\n", e.name, err)
				os.Exit(1)
			}
		}
		fmt.Printf("[%s done in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if *profile {
		if *profileFormat == "folded" {
			sinks.WriteFolded(os.Stdout)
		} else {
			sinks.WriteHotFunctions(os.Stdout, *top)
		}
	}
	if *baselineOut != "" || oldBase != nil {
		snap := sinks.Obs.Reg().Snapshot()
		params := map[string]string{"scale": strconv.Itoa(*scale), "runs": strconv.Itoa(*runs)}
		fresh := perf.FromSnapshot(want, snap, prov, params)
		if *baselineOut != "" {
			if err := fresh.Save(*baselineOut); err != nil {
				fmt.Fprintf(os.Stderr, "r2cbench: %v\n", err)
				exitCode = 1
			} else {
				fmt.Printf("[baseline %q written to %s]\n", want, *baselineOut)
			}
		}
		if oldBase != nil {
			rep := perf.Judge(oldBase, fresh, perf.Thresholds{
				DeterministicPct: *perfNoiseDet,
				TimingPct:        *perfNoise,
				TimingAdvisory:   *compareWarn,
			})
			rep.WriteTable(os.Stdout)
			if rep.Failed() {
				fmt.Fprintf(os.Stderr, "r2cbench: performance regressed vs %s\n", *compare)
				exitCode = 1
			}
		}
	}
	if *incidentsOut != "" {
		f, ferr := os.Create(*incidentsOut)
		if ferr == nil {
			ferr = ilog.WriteJSON(f)
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "r2cbench: incidents: %v\n", ferr)
			exitCode = 1
		} else {
			fmt.Printf("[%d incident records written to %s]\n", ilog.Len(), *incidentsOut)
		}
	}
	if *timeseriesOut != "" {
		f, ferr := os.Create(*timeseriesOut)
		if ferr == nil {
			ferr = series.WriteJSON(f)
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "r2cbench: timeseries: %v\n", ferr)
			exitCode = 1
		} else {
			fmt.Printf("[time-series rings written to %s]\n", *timeseriesOut)
		}
	}
	if len(rules) > 0 {
		states := telemetry.EvalAlertsSeries(rules, sinks.Obs.Reg().Snapshot(), series.Snapshot(nil, 0), time.Since(invocationStart))
		telemetry.WriteAlertTable(os.Stdout, states)
		if n := telemetry.FiringCount(states); n > 0 {
			fmt.Fprintf(os.Stderr, "r2cbench: %d alert rule(s) firing\n", n)
			exitCode = 1
		}
	}
	fmt.Println(eng.Footer("r2cbench"))
	// Shut the ops server down before the sinks so no scrape can race the
	// final metrics snapshot; Close drains in-flight requests and joins the
	// serve goroutine.
	if err := ops.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "r2cbench: ops shutdown: %v\n", err)
	}
	if err := eng.Journal.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "r2cbench: %v\n", err)
		exitCode = 1
	}
	if err := sinks.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "r2cbench: %v\n", err)
		os.Exit(1)
	}
	os.Exit(exitCode)
}
