// Command r2cserve runs the self-healing serving fleet: N diversified
// variants of a request handler behind an open-loop load generator, with
// detection-triggered quarantine and live re-diversification — the moving
// target defense R2C's "instant re-randomization" principle promises,
// measured end to end. Attack pressure is scripted (-attack) and the run
// reports steady-state throughput, tail latency (p50/p90/p99) and the
// wall-clock time-to-replace a compromised variant.
//
// All simulated-domain results (throughput, latency quantiles, detections,
// incident records) are deterministic: identical flags produce
// byte-identical -json and -incidents-out output at any -jobs width.
//
// Usage:
//
//	r2cserve [-config NAME] [-variants N] [-mvee N] [-requests N] [-rate RPS]
//	         [-seed N] [-heal rebuild|reroll] [-rebuild-latency SEC]
//	         [-attack overwrite|hijack] [-attack-start N] [-attack-every N]
//	         [-attack-target SYM] [-attack-value V] [-adaptive]
//	         [-slice N] [-max-slices N] [-fuel N] [-jobs N] [-json]
//	         [-require-recover] [-metrics-out FILE] [-trace FILE]
//	         [-trace-format jsonl|chrome] [-flight N] [-incidents-out FILE]
//	         [-listen ADDR] [-alert-rules FILE] [-sample-every SEC]
//	         [-timeseries-out FILE] [-degrade-slot N -degrade-after N -degrade-growth F]
//	         <nginx|apache|victim|FILE.tir>
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"r2c/internal/attack"
	"r2c/internal/defense"
	"r2c/internal/exec"
	"r2c/internal/fleet"
	"r2c/internal/incident"
	"r2c/internal/perf"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
	"r2c/internal/vm"
	"r2c/internal/workload"
)

func main() {
	cfgName := flag.String("config", "r2c", "defense configuration (baseline, r2c, push, avx, btdp, prolog, layout, oia, ...)")
	variants := flag.Int("variants", 4, "fleet size: number of live diversified variants (≥ 2)")
	mveeN := flag.Int("mvee", 0, "supervise every request across N variants with divergence detection (0 = single-variant serving)")
	requests := flag.Int("requests", 2000, "number of requests the load generator emits")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in simulated req/s (0 = auto-calibrate to ~70% of capacity)")
	seed := flag.Uint64("seed", 1, "base seed; variant i starts with seed+i, replacements draw fresh seeds above")
	heal := flag.String("heal", fleet.HealRebuild, "quarantine response: rebuild (fresh-seed re-diversification) or reroll (BTRA-only re-randomization)")
	rebuildLat := flag.Float64("rebuild-latency", 0, "simulated seconds a quarantined variant stays out of rotation (0 = ~20 service times)")
	atkMode := flag.String("attack", "", "attack pressure: overwrite (corrupt -attack-target) or hijack (victim control-flow hijack); empty = benign run")
	atkStart := flag.Int("attack-start", 100, "first attacked request index")
	atkEvery := flag.Int("attack-every", 50, "attack period: every Nth request from -attack-start is malicious")
	atkTarget := flag.String("attack-target", "page64", "data symbol the overwrite attack corrupts")
	atkValue := flag.Uint64("attack-value", 0xbadc0ffee, "value the overwrite attack writes")
	adaptive := flag.Bool("adaptive", false, "attacker re-leaks the victim's layout after each heal (repeated-disclosure adversary)")
	sliceInstrs := flag.Int("slice", 0, "MVEE lockstep slice size in instructions (0 = default)")
	maxSlices := flag.Int("max-slices", 0, "MVEE slice budget per request — expiry is a liveness divergence (0 = default)")
	fuel := flag.Uint64("fuel", 0, "single-variant per-request instruction allowance — exhaustion quarantines as a hang (0 = default)")
	jobs := flag.Int("jobs", 0, "build parallelism (0 = GOMAXPROCS); simulated-domain output is identical at any width")
	asJSON := flag.Bool("json", false, "emit the machine-readable JSON report instead of the text report")
	requireRecover := flag.Bool("require-recover", false, "exit nonzero unless the run both quarantined and recovered at least one variant (smoke-test gate)")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot (fleet histograms, counters, headline gauges) to FILE")
	traceOut := flag.String("trace", "", "write structured events and spans to FILE")
	traceFormat := flag.String("trace-format", telemetry.TraceJSONL, "trace file format: jsonl or chrome (chrome://tracing / Perfetto)")
	flightCap := flag.Int("flight", 0, "arm a per-process control-flow flight recorder with N events (0 disables)")
	incidentsOut := flag.String("incidents-out", "", "write the incident timeline (trap/fault/hang/divergence records) as JSON to FILE on exit")
	listen := flag.String("listen", "", "serve the live ops endpoint (/metrics, /progress, /incidents, /timeseries, /dashboard, /healthz) on ADDR, e.g. :8642")
	alertRules := flag.String("alert-rules", "", "evaluate the declarative alert rules in FILE at exit (and live on /alerts); windowed functions read the sampled time series; any firing rule fails the run")
	sampleEvery := flag.Float64("sample-every", 0, "time-series sampling period in simulated seconds (0 = auto ≈ 240 points per run, negative disables); samples feed /timeseries, /dashboard, windowed alerts and -timeseries-out")
	timeseriesOut := flag.String("timeseries-out", "", "write the sampled time-series rings as JSON to FILE on exit (byte-identical at any -jobs width)")
	degradeSlot := flag.Int("degrade-slot", 0, "fault injection: variant slot whose service time degrades (with -degrade-growth)")
	degradeAfter := flag.Int("degrade-after", 0, "fault injection: first request index of the degradation")
	degradeGrowth := flag.Float64("degrade-growth", 0, "fault injection: per-request service-time growth factor > 1 on the degraded slot (0 = off); output stays correct, only timing drifts")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: r2cserve [flags] <nginx|apache|victim|FILE.tir>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfg, ok := defense.ByName(*cfgName)
	if !ok {
		fatal(fmt.Errorf("unknown config %q", *cfgName))
	}
	mod, err := resolveModule(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	// Alert rules are parsed before any work runs so a malformed file fails
	// fast, like an unknown workload name.
	var rules []telemetry.AlertRule
	if *alertRules != "" {
		rules, err = telemetry.LoadAlertRules(*alertRules)
		if err != nil {
			fmt.Fprintln(os.Stderr, "r2cserve:", err)
			os.Exit(2)
		}
	}
	if *atkMode == fleet.ModeHijack && flag.Arg(0) != "victim" {
		fatal(fmt.Errorf("the hijack attack needs the victim workload (it targets the victim's admin_ptr/secret_key assets)"))
	}

	sinks, err := telemetry.OpenSinksOpts(telemetry.SinkOptions{
		MetricsOut:     *metricsOut,
		TraceOut:       *traceOut,
		TraceFormat:    *traceFormat,
		EnsureRegistry: true, // the report publishes headline gauges
		Meta:           perf.Collect().Meta(),
		FlightCap:      *flightCap,
	})
	if err != nil {
		fatal(err)
	}
	ilog := incident.NewLog()
	eng := exec.New(*jobs, sinks.Obs)
	eng.Incidents = ilog

	fl, err := fleet.New(fleet.Options{
		Module:         mod,
		Cfg:            cfg,
		Prof:           vm.EPYCRome(),
		Variants:       *variants,
		BaseSeed:       *seed,
		Requests:       *requests,
		RateRPS:        *rate,
		MVEE:           *mveeN,
		SliceInstrs:    *sliceInstrs,
		MaxSlices:      *maxSlices,
		RequestFuel:    *fuel,
		Heal:           *heal,
		RebuildLatency: *rebuildLat,
		Attack: fleet.Schedule{
			Start:    *atkStart,
			Every:    *atkEvery,
			Mode:     *atkMode,
			Target:   *atkTarget,
			Value:    *atkValue,
			Adaptive: *adaptive,
		},
		Eng:         eng,
		Obs:         sinks.Obs,
		Incidents:   ilog,
		SampleEvery: *sampleEvery,
		Degrade: fleet.Degrade{
			Slot:   *degradeSlot,
			After:  *degradeAfter,
			Growth: *degradeGrowth,
		},
	})
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	var ops *telemetry.OpsServer
	if *listen != "" {
		ops, err = telemetry.ServeOpsSources(*listen, telemetry.OpsSources{
			Registry:  sinks.Obs.Reg(),
			Progress:  func() any { return fl.Live() },
			Incidents: func() any { return ilog.Timeline() },
			Series:    fl.Series(),
			Health:    fl.Health,
			Alerts: func() any {
				return telemetry.EvalAlertsSeries(rules, sinks.Obs.Reg().Snapshot(), fl.Series().Snapshot(nil, 0), time.Since(start))
			},
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[ops endpoint listening on %s]\n", ops.URL())
	}

	rep, err := fl.Serve(context.Background())
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		err = rep.WriteJSON(os.Stdout)
	} else {
		err = rep.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
	if *incidentsOut != "" {
		f, ferr := os.Create(*incidentsOut)
		if ferr == nil {
			ferr = ilog.WriteJSON(f)
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "r2cserve: incidents: %v\n", ferr)
			os.Exit(1)
		}
		fmt.Printf("[%d incident records written to %s]\n", ilog.Len(), *incidentsOut)
	}
	if *timeseriesOut != "" {
		f, ferr := os.Create(*timeseriesOut)
		if ferr == nil {
			ferr = fl.Series().WriteJSON(f)
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "r2cserve: timeseries: %v\n", ferr)
			os.Exit(1)
		}
		fmt.Printf("[time-series rings written to %s]\n", *timeseriesOut)
	}
	// Ops server first, so no scrape can race the final metrics snapshot.
	if err := ops.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "r2cserve: ops shutdown: %v\n", err)
	}
	exitCode := 0
	if len(rules) > 0 {
		states := telemetry.EvalAlertsSeries(rules, sinks.Obs.Reg().Snapshot(), fl.Series().Snapshot(nil, 0), time.Since(start))
		telemetry.WriteAlertTable(os.Stdout, states)
		if n := telemetry.FiringCount(states); n > 0 {
			fmt.Fprintf(os.Stderr, "r2cserve: %d alert rule(s) firing\n", n)
			exitCode = 1
		}
	}
	if err := sinks.Close(); err != nil {
		fatal(err)
	}
	if *requireRecover && (rep.Sim.Quarantines == 0 || rep.Sim.Recoveries == 0) {
		fmt.Fprintf(os.Stderr, "r2cserve: require-recover: %d quarantines, %d recoveries — the detect→quarantine→rebuild→resume loop did not close\n",
			rep.Sim.Quarantines, rep.Sim.Recoveries)
		os.Exit(1)
	}
	os.Exit(exitCode)
}

// resolveModule maps the positional argument to a per-request module: the
// fleet's unit of work is one request, so the webserver names resolve to
// their single-request variants rather than the throughput benchmarks.
func resolveModule(name string) (*tir.Module, error) {
	switch name {
	case "nginx":
		return workload.NginxRequest(), nil
	case "apache":
		return workload.ApacheRequest(), nil
	case "victim":
		return attack.Victim(), nil
	}
	if strings.HasSuffix(name, ".tir") {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		return tir.Parse(string(src))
	}
	return nil, fmt.Errorf("unknown workload %q (nginx, apache, victim, or a .tir file)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "r2cserve:", err)
	os.Exit(1)
}
