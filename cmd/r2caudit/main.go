// Command r2caudit is the variant diversity auditor: it builds N
// re-diversified images of one workload under one defense configuration and
// reports how random the randomization actually is — placement-order
// entropy, the distributions of every randomized code-generation choice
// (BTRA pre/post offsets, NOP runs, global padding, BTDP placement,
// register allocation), and the pairwise survivor surface: addresses,
// gadget-like instruction windows and data words an address-oblivious
// attacker could carry unchanged from one variant to another.
//
// The report is deterministic: identical inputs produce byte-identical
// output at any -jobs width, so reports can be diffed across toolchain
// versions and checked into CI as goldens.
//
// Usage:
//
//	r2caudit [-config NAME] [-variants N] [-seed N] [-scale N] [-gadget-len N]
//	         [-jobs N] [-json] [-metrics-out FILE] [-trace FILE] [-trace-format jsonl|chrome]
//	         [-listen ADDR] <workload>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"r2c/internal/attack"
	"r2c/internal/audit"
	"r2c/internal/defense"
	"r2c/internal/exec"
	"r2c/internal/perf"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
	"r2c/internal/workload"
)

func main() {
	cfgName := flag.String("config", "r2c", "defense configuration (baseline, r2c, push, avx, btdp, prolog, layout, oia, ...)")
	variants := flag.Int("variants", 16, "number of re-diversified builds to compare (≥ 2)")
	seed := flag.Uint64("seed", 1, "base seed; variant i builds with seed+i")
	scale := flag.Int("scale", 8, "workload scale divisor")
	gadgetLen := flag.Int("gadget-len", audit.DefaultGadgetLen, "instruction-window length of the gadget survivor analysis")
	jobs := flag.Int("jobs", 0, "parallel builds (0 = GOMAXPROCS, 1 = serial); the report is identical at any width")
	asJSON := flag.Bool("json", false, "emit the machine-readable JSON report instead of the text report")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot (audit histograms and gauges) to FILE")
	traceOut := flag.String("trace", "", "write structured events and pipeline spans to FILE")
	traceFormat := flag.String("trace-format", telemetry.TraceJSONL, "trace file format: jsonl or chrome (chrome://tracing / Perfetto)")
	listen := flag.String("listen", "", "serve the live ops endpoint (/metrics, /healthz, /progress, /debug/pprof) on ADDR, e.g. :8642")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: r2caudit [flags] <workload|victim|FILE.tir>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfg, ok := defense.ByName(*cfgName)
	if !ok {
		fatal(fmt.Errorf("unknown config %q", *cfgName))
	}
	mod, err := resolveModule(flag.Arg(0), *scale)
	if err != nil {
		fatal(err)
	}

	// The audit always publishes into a registry (its report aggregates
	// registry histograms), so force one even with no file sink requested.
	sinks, err := telemetry.OpenSinksOpts(telemetry.SinkOptions{
		MetricsOut:     *metricsOut,
		TraceOut:       *traceOut,
		TraceFormat:    *traceFormat,
		EnsureRegistry: true,
		Meta:           perf.Collect().Meta(),
	})
	if err != nil {
		fatal(err)
	}
	eng := exec.New(*jobs, sinks.Obs)
	var ops *telemetry.OpsServer
	if *listen != "" {
		ops, err = telemetry.ServeOpsSources(*listen, telemetry.OpsSources{
			Registry: sinks.Obs.Reg(),
			Progress: func() any { return eng.Progress() },
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[ops endpoint listening on %s]\n", ops.URL())
	}
	rep, err := audit.Run(audit.Options{
		Module:    mod,
		Cfg:       cfg,
		Variants:  *variants,
		BaseSeed:  *seed,
		GadgetLen: *gadgetLen,
		Eng:       eng,
		Obs:       sinks.Obs,
	})
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		err = rep.WriteJSON(os.Stdout)
	} else {
		err = rep.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
	// Ops server first, so no scrape can race the final metrics snapshot.
	if err := ops.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "r2caudit: ops shutdown: %v\n", err)
	}
	if err := sinks.Close(); err != nil {
		fatal(err)
	}
}

// resolveModule mirrors r2cc's workload resolution: a built-in workload
// name, the attack victim, or a .tir file.
func resolveModule(name string, scale int) (*tir.Module, error) {
	if name == "victim" {
		return attack.Victim(), nil
	}
	if b, ok := workload.ByName(name); ok {
		return b.Build(scale), nil
	}
	if strings.HasSuffix(name, ".tir") {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		return tir.Parse(string(src))
	}
	return nil, fmt.Errorf("unknown workload %q (SPEC name, nginx, apache, victim, or a .tir file)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "r2caudit:", err)
	os.Exit(1)
}
