// Command r2cc is the compiler driver: it compiles a built-in workload (or
// the attack victim) under a named defense configuration and can dump the
// disassembly, the text/data layout, and a paused stack view — the
// executable version of the paper's Figures 2, 3 and 5.
//
// Usage:
//
//	r2cc [-config NAME] [-seed N] [-dump FUNC] [-layout] [-stack] [-run] <workload>
//
// Workloads: any SPEC benchmark name (perlbench, gcc, ...), nginx, apache,
// victim, or a path to a .tir source file (see internal/tir's textual
// format).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"r2c/internal/attack"
	"r2c/internal/defense"
	"r2c/internal/perf"
	"r2c/internal/sim"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
	"r2c/internal/vm"
	"r2c/internal/workload"
)

func main() {
	cfgName := flag.String("config", "r2c", "defense configuration (baseline, r2c, push, avx, btdp, prolog, layout, oia, readactor, krx, ...)")
	seed := flag.Uint64("seed", 1, "diversification seed")
	dump := flag.String("dump", "", "disassemble the named function")
	layout := flag.Bool("layout", false, "print the text/data layout")
	stack := flag.Bool("stack", false, "run to a pause point and dump the stack (the Figure 2 view)")
	runIt := flag.Bool("run", false, "execute the program and report statistics")
	scale := flag.Int("scale", 8, "workload scale divisor")
	metricsOut := flag.String("metrics-out", "", "with -run: write a JSON metrics snapshot to FILE")
	traceOut := flag.String("trace", "", "write structured runtime events (and spans) to FILE")
	traceFormat := flag.String("trace-format", telemetry.TraceJSONL, "trace file format: jsonl or chrome (chrome://tracing / Perfetto)")
	profile := flag.Bool("profile", false, "with -run: print the per-function simulated-cycle profile")
	top := flag.Int("top", 15, "rows in the -profile hot-function table")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: r2cc [flags] <workload|victim>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cfg, ok := defense.ByName(*cfgName)
	if !ok {
		fatal(fmt.Errorf("unknown config %q", *cfgName))
	}
	var mod *tir.Module
	if flag.Arg(0) == "victim" {
		mod = attack.Victim()
	} else if b, ok := workload.ByName(flag.Arg(0)); ok {
		mod = b.Build(*scale)
	} else if strings.HasSuffix(flag.Arg(0), ".tir") {
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		mod, err = tir.Parse(string(src))
		if err != nil {
			fatal(err)
		}
	} else {
		fatal(fmt.Errorf("unknown workload %q (SPEC name, nginx, apache, victim, or a .tir file)", flag.Arg(0)))
	}

	// BuildImage is the same compile+link pipeline the experiment harnesses
	// memoize in their build caches; going through it keeps the seed
	// derivation in one place.
	img, err := sim.BuildImage(mod, cfg, *seed)
	if err != nil {
		fatal(err)
	}
	prog := img.Prog
	st := mod.Stats()
	fmt.Printf("%s under %s (seed %d): %d funcs, %d TIR instrs, %d call sites, text %d KiB, data %d KiB\n",
		mod.Name, cfg.Name, *seed, st.Funcs, st.Instrs, st.CallSites,
		img.TextSize()/1024, img.DataSize()/1024)

	if *dump != "" {
		f := prog.Func(*dump)
		if f == nil {
			fatal(fmt.Errorf("no function %q", *dump))
		}
		fmt.Print(f.Disasm())
		if len(f.CallSites) > 0 {
			fmt.Println("call sites:")
			for _, cs := range f.CallSites {
				callee := cs.Callee
				if callee == "" {
					callee = "<indirect>"
				}
				fmt.Printf("  #%d -> %s: pre=%d post=%d nops=%d stackargs=%d\n",
					cs.ID, callee, cs.Pre, cs.Post, cs.NumNOPs, cs.StackArgs)
			}
		}
	}

	if *layout {
		fmt.Println("text layout:")
		for i, name := range img.FuncOrder {
			pf := img.Funcs[name]
			tag := ""
			if pf.F.BoobyTrap {
				tag = " [booby trap]"
			} else if pf.F.Stub {
				tag = " [stub]"
			}
			fmt.Printf("  %#x +%-5d %s%s\n", pf.Start, pf.End-pf.Start, name, tag)
			if i > 60 {
				fmt.Printf("  ... (%d more)\n", len(img.FuncOrder)-i)
				break
			}
		}
		fmt.Println("data layout:")
		for i, name := range img.DataOrder {
			ds := img.DataSyms[name]
			fmt.Printf("  %#x +%-5d %-12s %s\n", ds.Addr, ds.Size, ds.Kind, name)
			if i > 60 {
				fmt.Printf("  ... (%d more)\n", len(img.DataOrder)-i)
				break
			}
		}
	}

	if *stack {
		if flag.Arg(0) != "victim" {
			fatal(fmt.Errorf("-stack needs the victim workload"))
		}
		s, err := attack.NewScenario(cfg, *seed)
		if err != nil {
			fatal(err)
		}
		dumpStack(s)
	}

	if *runIt {
		sinks, err := telemetry.OpenSinksOpts(telemetry.SinkOptions{
			MetricsOut:  *metricsOut,
			TraceOut:    *traceOut,
			TraceFormat: *traceFormat,
			Profile:     *profile,
			Meta:        perf.Collect().Meta(),
		})
		if err != nil {
			fatal(err)
		}
		proc, err := sim.NewProcessFromImage(img, *seed, sinks.Obs)
		if err != nil {
			fatal(err)
		}
		mach := vm.New(proc, vm.EPYCRome())
		if sinks.Obs.Profiling() {
			mach.EnableProfiler()
		}
		res, err := mach.Run(sim.DefaultBudget)
		if reg := sinks.Obs.Reg(); reg != nil {
			mach.PublishMetrics(reg)
		}
		if err != nil {
			sinks.Close()
			fatal(err)
		}
		fmt.Printf("executed %d instructions, %d calls, %.0f cycles (%.3f ms on %s), maxrss %d KiB\n",
			res.Instructions, res.Calls, res.Cycles, res.Seconds(vm.EPYCRome())*1e3,
			vm.EPYCRome().Name, res.MaxRSSBytes/1024)
		fmt.Printf("output: %#x (halted=%v)\n", res.Output, res.Halted)
		if p := mach.Profiler(); p != nil {
			p.WriteTable(os.Stdout, *top)
		}
		if err := sinks.Close(); err != nil {
			fatal(err)
		}
	}
}

// dumpStack prints the paused stack with toolchain annotations — the
// executable rendition of Figure 2: under the baseline the return address
// sits alone at a predictable spot; under R2C it hides among BTRAs with
// BTDPs mixed into the data.
func dumpStack(s *attack.Scenario) {
	rsp := s.RSP()
	fmt.Printf("paused at pc=%#x rsp=%#x; stack view (64 words):\n", s.Mach.CPU.PC, rsp)
	type ann struct {
		addr uint64
		note string
	}
	var anns []ann
	for off := uint64(0); off < 64*8; off += 8 {
		addr := rsp + off
		v, err := s.Proc.Space.Read64(addr)
		if err != nil {
			break
		}
		note := ""
		switch {
		case isRealRAValue(s, v):
			note = "<- RETURN ADDRESS"
		case s.Proc.Img.IsBoobyTrapAddr(v):
			note = "<- booby-trapped return address (BTRA)"
		case isBTDP(s, v):
			note = "<- booby-trapped data pointer (BTDP)"
		case s.Proc.Heap.Contains(v):
			note = "<- heap pointer"
		case s.Proc.Img.FuncAt(v) != nil:
			note = "<- code pointer"
		}
		anns = append(anns, ann{addr, fmt.Sprintf("%#018x  %s", v, note)})
	}
	sort.Slice(anns, func(i, j int) bool { return anns[i].addr < anns[j].addr })
	for _, a := range anns {
		fmt.Printf("  %#x: %s\n", a.addr, a.note)
	}
}

func isRealRAValue(s *attack.Scenario, v uint64) bool {
	for _, ra := range s.Proc.Img.CallSiteRA {
		if ra == v {
			return true
		}
	}
	return false
}

func isBTDP(s *attack.Scenario, v uint64) bool {
	for _, b := range s.Proc.BTDPValues {
		if b == v {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "r2cc:", err)
	os.Exit(1)
}
