module r2c

go 1.22
