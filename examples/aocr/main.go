// aocr mounts the paper's headline attack — address-oblivious code reuse
// (Section 2.3) — against the same victim program built three ways:
// unprotected, code-diversification-only (Readactor), and full R2C. It
// narrates each stage of the chain so the defense mechanics are visible.
//
//	go run ./examples/aocr
package main

import (
	"fmt"
	"log"

	"r2c/internal/attack"
	"r2c/internal/defense"
)

func main() {
	fmt.Println("AOCR: (A) profile the stack, (B) leak the heap, (C) corrupt the data section")
	fmt.Println()

	for _, cfg := range []defense.Config{defense.Off(), defense.Readactor(), defense.R2CFull()} {
		fmt.Printf("=== victim protected by: %s ===\n", cfg.Name)
		narrate(cfg)
		fmt.Println()
	}

	fmt.Println("verdict across 12 trials each:")
	for _, cfg := range []defense.Config{defense.Off(), defense.Readactor(), defense.R2CFull()} {
		tally := attack.Tally{}
		for seed := uint64(1); seed <= 12; seed++ {
			s, err := attack.NewScenario(cfg, seed)
			if err != nil {
				log.Fatal(err)
			}
			tally.Add(s.AOCR())
		}
		fmt.Printf("  %-12s %v\n", cfg.Name, &tally)
	}
}

func narrate(cfg defense.Config) {
	s, err := attack.NewScenario(cfg, 6)
	if err != nil {
		log.Fatal(err)
	}

	// Stage A: stack profiling.
	leaks, err := s.LeakStack(2 * 4096)
	if err != nil {
		log.Fatal(err)
	}
	cl := s.Classify(leaks)
	fmt.Printf("  A: leaked %d stack words; %d pointer clusters", len(leaks), len(cl.All))
	if cl.Heap != nil {
		btdps := 0
		for _, v := range cl.Heap.Values {
			if isBTDP(s, v) {
				btdps++
			}
		}
		fmt.Printf("; heap cluster has %d pointers (%d are BTDPs in disguise)\n",
			cl.Heap.Count, btdps)
	} else {
		fmt.Println("; no heap cluster found — attack stalls")
		return
	}

	// Stage B+C via the full chain, reporting the outcome.
	o := s.AOCR()
	switch o {
	case attack.Success:
		fmt.Println("  B: heap object leaked; found the pointer into the data section")
		fmt.Println("  C: located admin_ptr and secret_key at monoculture offsets,")
		fmt.Println("     overwrote them, and the next dispatch called secret_disclose(0x1337)")
		fmt.Println("  => ATTACK SUCCEEDED: the victim printed the WIN sentinel")
	case attack.Detected:
		fmt.Printf("  => ATTACK DETECTED after %d booby-trap detonation(s): a dereferenced\n", s.Detections+int(s.Proc.TrapCount()))
		fmt.Println("     'heap pointer' was a BTDP guard page (Section 4.2)")
	case attack.Failed:
		fmt.Println("  => attack FAILED silently: shuffled globals put the corruption in the")
		fmt.Println("     wrong place, so the dispatch stayed benign (Section 7.2.2)")
	case attack.Crashed:
		fmt.Println("  => the victim crashed without reaching the attacker's goal")
	}
}

func isBTDP(s *attack.Scenario, v uint64) bool {
	for _, b := range s.Proc.BTDPValues {
		if b == v {
			return true
		}
	}
	return false
}
