// mvee demonstrates the multi-variant execution extension the paper
// proposes in Section 7.3: run two differently-diversified R²C variants of
// the same program in lockstep and raise an alarm on any divergence.
// Because diversification never changes semantics, benign runs agree
// bit-for-bit; a memory corruption is address-dependent, so the same
// attacker-induced writes perturb each variant differently and surface
// immediately.
//
//	go run ./examples/mvee
package main

import (
	"fmt"
	"log"

	"r2c/internal/attack"
	"r2c/internal/defense"
	"r2c/internal/mvee"
	"r2c/internal/vm"
	"r2c/internal/workload"
)

func main() {
	fmt.Println("=== benign supervision: an R2C-protected workload, 3 variants ===")
	b, _ := workload.ByName("xz")
	e, err := mvee.New(b.Build(8), defense.R2CFull(), 3, 7, vm.EPYCRome())
	if err != nil {
		log.Fatal(err)
	}
	for i, va := range e.Variants {
		fmt.Printf("  variant %d: seed %d, text base %#x\n", i, va.Seed, va.Proc.Img.TextBase)
	}
	v, err := e.Run(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  verdict: diverged=%v trapped=%v — outputs agree across all variants\n\n",
		v.Diverged, v.Trapped)

	fmt.Println("=== supervised attack: the corruption that wins against one process ===")
	e2, err := mvee.New(attack.Victim(), defense.Off(), 2, 99, vm.EPYCRome())
	if err != nil {
		log.Fatal(err)
	}
	img := e2.Variants[0].Proc.Img
	fmt.Println("  attacker (having leaked variant 0's layout) overwrites admin_ptr and secret_key;")
	fmt.Println("  the supervisor replicates the input-induced writes to variant 1")
	e2.CorruptAll(img.DataSyms[attack.SymSecretKey].Addr, attack.MagicArg)
	e2.CorruptAll(img.DataSyms[attack.SymAdminPtr].Addr, img.Funcs[attack.SymSecretFunc].Start)
	v2, err := e2.Run(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	if attack.HasWin(v2.Results[0].Output) {
		fmt.Println("  variant 0 alone: the attack SUCCEEDED (unprotected single process)")
	}
	fmt.Printf("  MVEE verdict: detected=%v (%s)\n", v2.Detected(), v2.Reason)
	if !v2.Detected() {
		log.Fatal("expected divergence")
	}
	fmt.Println("\nthe same corruption under two diversified layouts cannot win twice —")
	fmt.Println("Section 7.3: \"an MVEE would detect data corruption or leakage in one of")
	fmt.Println("the variants with high probability\"")
}
