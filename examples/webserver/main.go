// webserver reruns the Section 6.2.4 experiment interactively: nginx- and
// Apache-like request loops under baseline and full R2C on the Intel and
// AMD machine profiles, reporting the throughput deficit the paper measured
// (−13%/−12% on the i9-9900K; −3..4% on the AMD machines).
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"log"
	"os"

	"r2c/internal/bench"
	"r2c/internal/defense"
	"r2c/internal/sim"
	"r2c/internal/vm"
	"r2c/internal/workload"
)

func main() {
	// One illustrated run first: what a protected request costs.
	b, _ := workload.ByName("nginx")
	m := b.Build(4)
	prof := vm.I99900K()
	base, _, err := sim.Run(m, defense.Off(), 1, prof)
	if err != nil {
		log.Fatal(err)
	}
	full, proc, err := sim.Run(m, defense.R2CFull(), 1, prof)
	if err != nil {
		log.Fatal(err)
	}
	requests := float64(workload.WebRequests / 4)
	fmt.Printf("nginx-like server, %v requests on %s:\n", requests, prof.Name)
	fmt.Printf("  baseline : %6.0f cycles/request\n", base.Cycles/requests)
	fmt.Printf("  full R2C : %6.0f cycles/request (BTRAs on every call, %d BTDP guard pages resident)\n",
		full.Cycles/requests, len(proc.GuardPages))
	fmt.Println()

	// The real experiment: saturation throughput, median of five runs.
	fmt.Println("Section 6.2.4 experiment (median of 5 runs; paper: -13%/-12% on i9, -3..4% on AMD):")
	if _, err := bench.Webserver(bench.Options{Scale: 2, Runs: 5, Out: os.Stdout}); err != nil {
		log.Fatal(err)
	}
}
