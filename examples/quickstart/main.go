// Quickstart: compile a small program under full R2C, run it, and compare
// against the unprotected baseline — the five-minute tour of the toolchain.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"r2c/internal/defense"
	"r2c/internal/sim"
	"r2c/internal/tir"
	"r2c/internal/vm"
)

// buildProgram constructs a tiny program in TIR: sum the squares of 0..99
// through a helper call, with one heap buffer and one global.
func buildProgram() *tir.Module {
	mb := tir.NewModule("quickstart")
	mb.AddDefaultParam("bias", 7)

	square := mb.NewFunc("square", 1)
	square.Ret(square.Bin(tir.OpMul, square.Param(0), square.Param(0)))

	main := mb.NewFunc("main", 0)
	sz := main.Const(64)
	buf := main.Alloc(sz)
	biasAddr := main.AddrGlobal("bias")
	bias := main.Load(biasAddr, 0)

	i := main.Const(0)
	n := main.Const(100)
	acc := main.Const(0)
	head := main.NewBlock()
	body := main.NewBlock()
	done := main.NewBlock()
	main.SetBlock(0)
	main.Br(head)
	main.SetBlock(head)
	c := main.Bin(tir.OpLt, i, n)
	main.CondBr(c, body, done)
	main.SetBlock(body)
	sq := main.Call("square", i)
	main.BinTo(acc, tir.OpAdd, acc, sq)
	one := main.Const(1)
	main.BinTo(i, tir.OpAdd, i, one)
	main.Br(head)
	main.SetBlock(done)
	main.BinTo(acc, tir.OpAdd, acc, bias)
	main.Store(buf, 0, acc)
	out := main.Load(buf, 0)
	main.Output(out)
	main.Free(buf)
	main.RetVoid()

	mb.SetEntry("main")
	return mb.MustBuild()
}

func main() {
	m := buildProgram()
	prof := vm.EPYCRome()

	base, _, err := sim.Run(m, defense.Off(), 1, prof)
	if err != nil {
		log.Fatal(err)
	}
	full, proc, err := sim.Run(m, defense.R2CFull(), 1, prof)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("quickstart: sum of squares 0..99 plus a global bias")
	fmt.Printf("  baseline : output=%d  %6d instructions  %8.0f cycles\n",
		base.Output[0], base.Instructions, base.Cycles)
	fmt.Printf("  full R2C : output=%d  %6d instructions  %8.0f cycles (+%.1f%%)\n",
		full.Output[0], full.Instructions, full.Cycles, (full.Cycles/base.Cycles-1)*100)
	if base.Output[0] != full.Output[0] {
		log.Fatal("diversification changed program behaviour!")
	}
	fmt.Printf("  same output, diversified layout: text %d KiB, %d booby-trap functions, %d BTDP guard pages\n",
		proc.Img.TextSize()/1024, proc.Cfg.BTRAPoolSize, len(proc.GuardPages))
	fmt.Println("\nnext steps:")
	fmt.Println("  go run ./examples/btra-anatomy   # watch the Figure 3 stack dance")
	fmt.Println("  go run ./examples/aocr           # mount the AOCR attack chain")
	fmt.Println("  go run ./examples/webserver      # the Section 6.2.4 throughput experiment")
	fmt.Println("  go run ./cmd/r2cbench all        # every table and figure")
}
