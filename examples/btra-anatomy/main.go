// btra-anatomy walks through the booby-trapped return address mechanism of
// Figure 3: the disassembled call-site setup, the paused stack image with
// the return address camouflaged among BTRAs (Figure 2b), and what happens
// when each candidate is "returned to".
//
//	go run ./examples/btra-anatomy
package main

import (
	"fmt"
	"log"

	"r2c/internal/attack"
	"r2c/internal/codegen"
	"r2c/internal/defense"
	"r2c/internal/isa"
)

func main() {
	cfg := defense.R2CPush() // push setup reads best in disassembly
	s, err := attack.NewScenario(cfg, 4)
	if err != nil {
		log.Fatal(err)
	}

	// 1. The call-site instrumentation (Figure 3a, caller side).
	fmt.Println("=== 1. caller-side BTRA setup (validate's call to helper) ===")
	pf := s.Proc.Img.Funcs[attack.SymValidate]
	printed := 0
	for i, in := range pf.F.Instrs {
		if in.Kind == isa.KPushImm || in.Kind == isa.KCall ||
			(in.Kind == isa.KAluImm && in.Dst == isa.RSP) || in.Kind == isa.KNop {
			fmt.Printf("  %#x: %s\n", pf.InstrAddrs[i], in.String())
			printed++
			if in.Kind == isa.KCall {
				break
			}
		}
	}
	var site *codegen.CallSite
	for i := range pf.F.CallSites {
		if pf.F.CallSites[i].Callee == attack.SymHelper {
			site = &pf.F.CallSites[i]
		}
	}
	if site != nil {
		fmt.Printf("  -> call site #%d: %d BTRAs above the RA (pre), %d below (post), %d NOPs\n",
			site.ID, site.Pre, site.Post, site.NumNOPs)
	}

	// 2. The callee cooperates (Figure 3a, right): the post-offset sub.
	fmt.Println("\n=== 2. callee-side post-offset protection (helper prologue) ===")
	hf := s.Proc.Img.Funcs[attack.SymHelper]
	for i, in := range hf.F.Instrs {
		fmt.Printf("  %#x: %s\n", hf.InstrAddrs[i], in.String())
		if i > 6 {
			fmt.Println("  ...")
			break
		}
	}
	fmt.Printf("  helper's post-offset: %d words\n", hf.F.PostOffset)

	// 3. The resulting stack image (Figure 2b): the paused frame.
	fmt.Println("\n=== 3. the paused stack: find the return address! ===")
	cands, err := s.RACandidates()
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cands {
		tag := "booby-trapped return address (BTRA)"
		if s.IsRealRA(c) {
			tag = "REAL return address"
		}
		fmt.Printf("  %#x: %#x  <- %s\n", c.Addr, c.Value, tag)
	}

	// 4. What "returning" to each candidate does.
	fmt.Println("\n=== 4. consequence of guessing each candidate ===")
	for i, c := range cands {
		switch {
		case s.IsRealRA(c):
			fmt.Printf("  candidate %2d: control returns normally — the one correct guess\n", i)
		case s.IsBTRA(c):
			fmt.Printf("  candidate %2d: lands in a booby-trap function — attack DETECTED\n", i)
		default:
			fmt.Printf("  candidate %2d: some other code pointer\n", i)
		}
	}
	fmt.Printf("\nattacker's per-frame odds: 1/%d; a 4-address ROP chain: (1/%d)^4 ≈ %.1e (Section 7.2.1)\n",
		len(cands), len(cands), 1.0/float64(len(cands)*len(cands)*len(cands)*len(cands)))
}
