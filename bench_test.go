// Package r2c's top-level benchmarks regenerate every table and figure of
// the paper's evaluation as testing.B benchmarks (`go test -bench=. -benchmem`).
// Each benchmark reports the headline numbers via b.ReportMetric so the
// paper-vs-measured comparison appears directly in the bench output; full
// row-by-row tables come from cmd/r2cbench and cmd/r2cattack.
package main

import (
	"strings"
	"testing"

	"r2c/internal/attack"
	"r2c/internal/bench"
	"r2c/internal/defense"
	"r2c/internal/sim"
	"r2c/internal/stats"
	"r2c/internal/vm"
	"r2c/internal/workload"
)

// benchOpt keeps benchmark iterations small; the cmd harness runs full
// scale.
func benchOpt() bench.Options { return bench.Options{Scale: 8, Runs: 1} }

// BenchmarkTable1ComponentOverheads regenerates Table 1 (paper geomeans:
// Push 1.06, AVX 1.04, BTDP 1.02, Prolog 1.02, Layout 1.00).
func BenchmarkTable1ComponentOverheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Geomean, r.Name+"-geomean")
			b.ReportMetric(r.Max, r.Name+"-max")
		}
	}
}

// BenchmarkTable2CallFrequency regenerates Table 2 (median executed-call
// counts, scaled back to paper magnitude).
func BenchmarkTable2CallFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		// Report the extreme rows: nab (highest) and lbm (lowest).
		for _, r := range rows {
			if r.Benchmark == "nab" || r.Benchmark == "lbm" {
				b.ReportMetric(float64(r.Scaled), r.Benchmark+"-calls-scaled")
			}
		}
	}
}

// BenchmarkFigure6FullR2C regenerates Figure 6 (paper: 6.6–8.5% geomean
// across the four machines).
func BenchmarkFigure6FullR2C(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.Figure6(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			name := strings.ReplaceAll(s.Machine, " ", "-")
			b.ReportMetric(s.Geomean, name+"-geomean-pct")
		}
	}
}

// BenchmarkWebserverThroughput regenerates the Section 6.2.4 experiment
// (paper: −13%/−12% on i9, −3..4% on the AMD machines).
func BenchmarkWebserverThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Webserver(bench.Options{Scale: 4, Runs: 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			name := strings.ReplaceAll(r.Server+"@"+r.Machine, " ", "-")
			b.ReportMetric(r.DeficitPct, name+"-deficit-pct")
		}
	}
}

// BenchmarkMemoryOverhead regenerates the Section 6.2.5 experiment (paper:
// SPEC 1–3% maxrss, webserver ≈100% with ≈55% from BTDP pages).
func BenchmarkMemoryOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Memory(bench.Options{Scale: 4, Runs: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SPECMaxrssMaxPct, "spec-maxrss-max-pct")
		b.ReportMetric(r.WebOverheadPct, "web-overhead-pct")
		b.ReportMetric(r.WebBTDPSharePct, "web-btdp-share-pct")
	}
}

// BenchmarkOIA regenerates the offset-invariant addressing measurement
// (paper: 0.79% geomean, 3.61% max).
func BenchmarkOIA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.OIA(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeomeanPct, "geomean-pct")
		b.ReportMetric(r.MaxPct, "max-pct")
	}
}

// BenchmarkAVX512 regenerates the Section 7.1 comparison (AVX-512 ≈ AVX2
// with the same move count; twice the BTRAs for similar cost).
func BenchmarkAVX512(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AVX512(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AVX2GeomeanPct, "avx2-pct")
		b.ReportMetric(r.AVX512GeomeanPct, "avx512-pct")
		b.ReportMetric(r.AVX512x20GeomeanPct, "avx512x20-pct")
	}
}

// BenchmarkTable3SecurityMatrix regenerates Table 3's attack columns
// (success and detection rates per defense).
func BenchmarkTable3SecurityMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table3(benchOpt(), 4, false)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Defense == "r2c-full" {
				b.ReportMetric(r.Tallies["aocr"].SuccessRate(), "r2c-aocr-success-rate")
				b.ReportMetric(r.DetectionRate, "r2c-detection-rate")
			}
			if r.Defense == "readactor" {
				b.ReportMetric(r.Tallies["aocr"].SuccessRate(), "readactor-aocr-success-rate")
			}
		}
	}
}

// BenchmarkGuessProbability regenerates the Section 7.2.1 numbers
// empirically (paper: (1/11)^4 ≈ 0.00007 for R=10, n=4).
func BenchmarkGuessProbability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.Prob(bench.Options{}, 20)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.R == 10 {
				b.ReportMetric(p.PerFrame, "per-frame-success")
				b.ReportMetric(p.Analytic, "analytic-1-over-11")
			}
		}
	}
}

// BenchmarkScalability regenerates the Section 6.3 check: compile and run a
// browser-scale module under full R2C.
func BenchmarkScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Scale(bench.Options{}, 2000)
		if err != nil {
			b.Fatal(err)
		}
		if !r.OutputOK {
			b.Fatal("browser-scale output diverged")
		}
		b.ReportMetric(float64(r.TextKB), "protected-text-KiB")
	}
}

// BenchmarkVMThroughput measures raw simulator speed (instructions/sec) on
// an uninstrumented workload — the substrate's own performance.
func BenchmarkVMThroughput(b *testing.B) {
	m := workload.MCF(4)
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		res, _, err := sim.Run(m, defense.Off(), uint64(i+1), vm.EPYCRome())
		if err != nil {
			b.Fatal(err)
		}
		instr += res.Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkCompile measures toolchain speed: full R2C compile+link of the
// largest SPEC-like module.
func BenchmarkCompile(b *testing.B) {
	m := workload.Xalancbmk(8)
	cfg := defense.R2CFull()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Build(m, cfg, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAOCRAttack measures one full AOCR attack chain against R2C
// (build, pause, profile, probe) — the security harness's unit of work.
func BenchmarkAOCRAttack(b *testing.B) {
	tally := attack.Tally{}
	for i := 0; i < b.N; i++ {
		s, err := attack.NewScenario(defense.R2CFull(), uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		tally.Add(s.AOCR())
	}
	if tally.Success > 0 {
		b.Fatalf("AOCR succeeded against R2C: %v", &tally)
	}
	b.ReportMetric(tally.DetectionRate(), "detection-rate")
	_ = stats.Pct
}
