// Command servesmoke drives the serving-fleet smoke test end to end: it is
// what `make serve-smoke` runs. Beyond the original detect→quarantine→
// rebuild→resume gate (-require-recover), it scrapes the live observatory
// mid-run — /timeseries must serve well-formed non-empty ring snapshots,
// /dashboard the self-contained page, /healthz a liveness verdict — then
// pins the -timeseries-out artifact byte-identical between -jobs 1 and
// -jobs 8, and finally proves the windowed-alert contract both ways: a clean
// run exits 0 with the rules quiet, and a run with injected service-time
// degradation exits 1 with the windowed rule FIRING.
//
// Usage: servesmoke <path-to-r2cserve>
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

// rules is the windowed alert the smoke runs under. The threshold sits two
// orders of magnitude above the workload's deterministic modeled service
// time (~7e-7s for the nginx request) and two below the degraded tail
// (growth capped at 1e4×), so it cannot fire clean and cannot miss degraded.
const rules = `# written by tools/servesmoke
degraded-tail: p99_over(fleet.variant.sojourn, 1000000) > 0.0001
`

// fleetArgs is the shared schedule: MVEE-supervised fleet under scripted
// corruption pressure, same shape as the original serve-smoke target.
func fleetArgs(requests string) []string {
	return []string{
		"-variants", "4", "-mvee", "2", "-requests", requests,
		"-attack", "overwrite", "-attack-start", "50", "-attack-every", "25",
	}
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: servesmoke <path-to-r2cserve>")
		os.Exit(2)
	}
	serve := os.Args[1]

	tmp, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(tmp)
	rulesPath := filepath.Join(tmp, "smoke.rules")
	if err := os.WriteFile(rulesPath, []byte(rules), 0o644); err != nil {
		fatal(err)
	}

	observatoryRun(serve, rulesPath)
	timeseriesDeterminismRun(serve, rulesPath, tmp)
	degradedRun(serve, rulesPath)
	fmt.Println("servesmoke: all gates passed")
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "servesmoke:", v)
	os.Exit(1)
}

// seriesSnapshot mirrors telemetry.SeriesSnapshot's JSON shape (the tool
// stays decoupled from the internal package on purpose: it validates the
// wire format a real consumer would parse).
type seriesSnapshot struct {
	Now    float64 `json:"now"`
	Series []struct {
		Name    string       `json:"name"`
		Dropped uint64       `json:"dropped"`
		Points  [][2]float64 `json:"points"`
	} `json:"series"`
}

func decodeSeries(body []byte) (*seriesSnapshot, error) {
	var snap seriesSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return nil, fmt.Errorf("timeseries body is not valid JSON: %w\n%s", err, body)
	}
	for _, sd := range snap.Series {
		if sd.Name == "" {
			return nil, fmt.Errorf("timeseries snapshot carries an unnamed series:\n%s", body)
		}
		for i := 1; i < len(sd.Points); i++ {
			if sd.Points[i][0] < sd.Points[i-1][0] {
				return nil, fmt.Errorf("series %s time axis goes backwards at point %d", sd.Name, i)
			}
		}
	}
	return &snap, nil
}

// observatoryRun is the live half: a long-enough clean run with -listen,
// scraped mid-flight, that must still pass -require-recover and exit 0 with
// the windowed rule quiet.
func observatoryRun(serve, rulesPath string) {
	args := append(fleetArgs("2000"),
		"-require-recover", "-listen", "127.0.0.1:0",
		"-alert-rules", rulesPath,
		"-metrics-out", "SERVE_metrics.json",
		"nginx")
	cmd := exec.Command(serve, args...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		fatal(err)
	}
	if err := cmd.Start(); err != nil {
		fatal(err)
	}

	// The ops URL arrives on stderr as "[ops endpoint listening on URL]".
	urlCh := make(chan string, 1)
	var stderr bytes.Buffer
	go func() {
		sc := bufio.NewScanner(io.TeeReader(stderrPipe, &stderr))
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "[ops endpoint listening on "); ok {
				urlCh <- strings.TrimSuffix(rest, "]")
			}
		}
	}()

	var base string
	select {
	case base = <-urlCh:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		fatal("ops endpoint never announced itself on stderr")
	}

	client := &http.Client{Timeout: 5 * time.Second}
	get := func(path string) (int, []byte, error) {
		resp, err := client.Get(base + path)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, body, err
	}

	// Poll /timeseries until the rings carry data — the serve loop samples on
	// simulated ticks, so any request progress fills them fast. Every
	// response along the way must be well-formed.
	deadline := time.Now().Add(30 * time.Second)
	sampled := false
	for time.Now().Before(deadline) {
		code, body, err := get("/timeseries")
		if err != nil {
			break // the run finished and closed the listener
		}
		if code != 200 {
			cmd.Process.Kill()
			fatal(fmt.Sprintf("/timeseries = %d: %s", code, body))
		}
		snap, derr := decodeSeries(body)
		if derr != nil {
			cmd.Process.Kill()
			fatal(derr)
		}
		if len(snap.Series) > 0 && len(snap.Series[0].Points) > 0 {
			sampled = true
			fmt.Printf("servesmoke: mid-run /timeseries: %d series at sim t=%.3gs\n", len(snap.Series), snap.Now)
			break
		}
	}
	if !sampled {
		cmd.Process.Kill()
		fatal("never saw a non-empty /timeseries snapshot mid-run")
	}

	// Filtered view: ?series= + ?last= must narrow, not error.
	if code, body, err := get("/timeseries?series=fleet.sojourn&last=8"); err == nil {
		if code != 200 {
			cmd.Process.Kill()
			fatal(fmt.Sprintf("/timeseries?series= = %d", code))
		}
		snap, derr := decodeSeries(body)
		if derr != nil {
			cmd.Process.Kill()
			fatal(derr)
		}
		for _, sd := range snap.Series {
			if !strings.HasPrefix(sd.Name, "fleet.sojourn") {
				cmd.Process.Kill()
				fatal(fmt.Sprintf("?series=fleet.sojourn returned %q", sd.Name))
			}
			if len(sd.Points) > 8 {
				cmd.Process.Kill()
				fatal(fmt.Sprintf("?last=8 returned %d points", len(sd.Points)))
			}
		}
	}

	// The dashboard must be served, self-contained HTML.
	if code, body, err := get("/dashboard"); err == nil {
		page := string(body)
		switch {
		case code != 200:
			cmd.Process.Kill()
			fatal(fmt.Sprintf("/dashboard = %d", code))
		case !strings.Contains(page, "<!DOCTYPE html>"), !strings.Contains(page, "id=\"health\""):
			cmd.Process.Kill()
			fatal("/dashboard is not the observatory page")
		case strings.Contains(page, "src=\"http"), strings.Contains(page, "href=\"http"):
			cmd.Process.Kill()
			fatal("/dashboard references an external asset")
		}
		fmt.Printf("servesmoke: mid-run /dashboard: %d bytes, self-contained\n", len(body))
	}

	// /healthz answers 200 "ok" or 503 "degraded: ..." depending on whether a
	// heal is in flight at scrape time; anything else is a failure.
	if code, body, err := get("/healthz"); err == nil {
		ok := code == 200 && strings.Contains(string(body), "ok")
		degraded := code == 503 && strings.Contains(string(body), "degraded:")
		if !ok && !degraded {
			cmd.Process.Kill()
			fatal(fmt.Sprintf("/healthz = %d %q", code, body))
		}
		fmt.Printf("servesmoke: mid-run /healthz: %d %s", code, body)
	}

	err = cmd.Wait()
	if err != nil {
		fatal(fmt.Sprintf("clean observatory run failed (%v)\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String()))
	}
	if out := stdout.String(); strings.Contains(out, "FIRING") {
		fatal("clean run fired the windowed alert:\n" + out)
	}
	fmt.Println("servesmoke: clean observatory run exited 0, rules quiet")
}

// timeseriesDeterminismRun pins the CLI artifact contract: the same schedule
// at -jobs 1 and -jobs 8 writes byte-identical -timeseries-out files.
func timeseriesDeterminismRun(serve, rulesPath, tmp string) {
	outs := map[string]string{"1": filepath.Join(tmp, "ts-jobs1.json"), "8": filepath.Join(tmp, "ts-jobs8.json")}
	for jobs, out := range outs {
		args := append(fleetArgs("400"),
			"-jobs", jobs, "-alert-rules", rulesPath, "-timeseries-out", out, "nginx")
		cmd := exec.Command(serve, args...)
		if b, err := cmd.CombinedOutput(); err != nil {
			fatal(fmt.Sprintf("-jobs %s run failed (%v):\n%s", jobs, err, b))
		}
	}
	a, err := os.ReadFile(outs["1"])
	if err != nil {
		fatal(err)
	}
	b, err := os.ReadFile(outs["8"])
	if err != nil {
		fatal(err)
	}
	if !bytes.Equal(a, b) {
		fatal("-timeseries-out differs between -jobs 1 and -jobs 8")
	}
	if _, err := decodeSeries(a); err != nil {
		fatal(err)
	}
	fmt.Printf("servesmoke: -timeseries-out byte-identical at -jobs 1 and -jobs 8 (%d bytes)\n", len(a))
}

// degradedRun injects the compounding slowdown; the windowed rule must fire
// and turn into exit code 1.
func degradedRun(serve, rulesPath string) {
	args := append(fleetArgs("400"),
		"-alert-rules", rulesPath,
		"-degrade-slot", "0", "-degrade-after", "5", "-degrade-growth", "1.3",
		"nginx")
	cmd := exec.Command(serve, args...)
	out, err := cmd.CombinedOutput()
	ee, isExit := err.(*exec.ExitError)
	if err == nil || !isExit {
		fatal(fmt.Sprintf("degraded run did not fail with an exit code (err %v):\n%s", err, out))
	}
	if code := ee.ExitCode(); code != 1 {
		fatal(fmt.Sprintf("degraded run exited %d, want 1:\n%s", code, out))
	}
	if !strings.Contains(string(out), "FIRING") {
		fatal(fmt.Sprintf("degraded run's alert table shows no FIRING rule:\n%s", out))
	}
	fmt.Println("servesmoke: degraded run fired the windowed alert and exited 1")
}
