# Convenience targets for the usual development loop. Everything is
# stdlib-only Go; no target needs the network.

GO ?= go

.PHONY: all build vet test test-race bench audit check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Concurrently-updated state lives in the telemetry registry and the exec
# engine (worker pool + build cache); their tests — and the bench drivers
# that fan cells through them — run under the race detector.
test-race:
	$(GO) test -race -timeout 300s ./internal/telemetry/ ./internal/sim/ ./internal/exec/ ./internal/bench/

# Go micro-benchmarks plus one real harness run per label, each emitting a
# BENCH_<label>.json metrics snapshot (cache hit/miss counters, pool gauges,
# cycle totals) for before/after comparison.
bench:
	$(GO) test -bench=. -benchmem -count=1 -run=^$$ .
	$(GO) run ./cmd/r2cbench -scale 8 -runs 1 -metrics-out BENCH_figure6.json figure6
	$(GO) run ./cmd/r2cattack -trials 4 -metrics-out BENCH_table3.json table3

# Diversity-audit smoke: 8 re-diversified builds of the attack victim under
# full R2C, emitted as the machine-readable JSON report. CI runs this to keep
# the auditor's CLI path (module resolution → parallel builds → deterministic
# fold → JSON) exercised end to end; the report lands in AUDIT_victim.json.
audit:
	$(GO) run ./cmd/r2caudit -config r2c -variants 8 -json victim > AUDIT_victim.json
	$(GO) run ./cmd/r2caudit -config r2c -variants 8 victim

# The tier-1 gate: what CI (.github/workflows/ci.yml) runs. The exec engine
# and the telemetry package (ops HTTP server, span sinks, registry) are cheap
# enough to always take the race detector. The tight -timeout is load-bearing:
# the fault-injection tests exercise watchdogs and stalls, and a regression
# that reintroduces a real hang should fail the gate in minutes, not hours.
check: build vet test
	$(GO) test -race -timeout 300s ./internal/exec/ ./internal/telemetry/

clean:
	$(GO) clean ./...
