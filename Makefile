# Convenience targets for the usual development loop. Everything is
# stdlib-only Go; no target needs the network.

GO ?= go
BIN := bin

.PHONY: all build vet test test-race bench bench-vm bench-compare audit serve-smoke check clean

all: check

build:
	$(GO) build ./...

# Harness binaries, built once so measured invocations never pay (or time)
# the compiler. `go run` inside a benchmark target folds compile time into
# the first measurement and defeats the build cache across labels.
$(BIN)/r2cbench $(BIN)/r2cattack $(BIN)/r2caudit $(BIN)/r2cserve: force
	$(GO) build -o $(BIN)/ ./cmd/r2cbench ./cmd/r2cattack ./cmd/r2caudit ./cmd/r2cserve

.PHONY: force
force:

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Concurrently-updated state lives in the telemetry registry and the exec
# engine (worker pool + build cache); their tests — and the bench drivers
# that fan cells through them — run under the race detector.
test-race:
	$(GO) test -race -timeout 300s ./internal/telemetry/ ./internal/sim/ ./internal/exec/ ./internal/bench/ ./internal/incident/ ./internal/fleet/ ./internal/mvee/

# Go micro-benchmarks plus one real harness run per label, each refreshing
# the committed BENCH_<label>.json baseline (geomean overheads, cycle totals,
# latency quantiles, provenance). Re-run after an intentional performance
# change and commit the diff; `make bench-compare` judges a working tree
# against the committed files.
bench: $(BIN)/r2cbench $(BIN)/r2cattack
	$(GO) test -bench=. -benchmem -count=1 -run=^$$ .
	$(BIN)/r2cbench -scale 8 -runs 1 -baseline BENCH_figure6.json figure6
	$(BIN)/r2cattack -trials 4 -baseline BENCH_table3.json table3

# Interpreter-core microbenchmarks: each kernel runs on the fast (predecoded)
# dispatch engine and the legacy per-instruction loop, so the printed
# Minstr/s pairs are the speedup the fast path buys on that code shape.
bench-vm:
	$(GO) test -bench=BenchmarkVM -benchmem -count=1 -run=^$$ ./internal/vm/

# Regression gate: re-run each committed baseline's experiment at its
# recorded parameters and fail on any deterministic drift or >2x latency
# growth. COMPARE_FLAGS=-compare-warn turns timing failures into warnings
# (what CI uses, since its machines differ from the baseline recorder's).
# DIAG=dir additionally writes each run's metrics snapshot and incident
# timeline into dir/ — the forensic bundle CI uploads when the gate fails.
DIAGFLAGS = $(if $(DIAG),-metrics-out $(DIAG)/$(1)-metrics.json -incidents-out $(DIAG)/$(1)-incidents.json)
bench-compare: $(BIN)/r2cbench $(BIN)/r2cattack
	$(if $(DIAG),mkdir -p $(DIAG))
	$(BIN)/r2cbench $(COMPARE_FLAGS) $(call DIAGFLAGS,figure6) -compare BENCH_figure6.json
	$(BIN)/r2cattack $(COMPARE_FLAGS) $(call DIAGFLAGS,table3) -compare BENCH_table3.json

# Diversity-audit smoke: 8 re-diversified builds of the attack victim under
# full R2C, emitted as the machine-readable JSON report. CI runs this to keep
# the auditor's CLI path (module resolution → parallel builds → deterministic
# fold → JSON) exercised end to end; the report lands in AUDIT_victim.json.
audit: $(BIN)/r2caudit
	$(BIN)/r2caudit -config r2c -variants 8 -json victim > AUDIT_victim.json
	$(BIN)/r2caudit -config r2c -variants 8 victim

# Serving-fleet smoke: tools/servesmoke drives r2cserve through three bounded
# MVEE-supervised runs under injected corruption pressure. The clean run keeps
# -require-recover (exit nonzero unless detect → quarantine → rebuild → resume
# happened) and is scraped mid-flight: /timeseries must serve well-formed ring
# snapshots, /dashboard the self-contained observatory page, /healthz a
# verdict. A -jobs 1 vs -jobs 8 pair must write byte-identical -timeseries-out
# files, and a run with injected service-time degradation must trip the
# windowed p99_over alert and exit 1 while the clean run's rules stay quiet.
# The fleet report still lands in SERVE_metrics.json.
serve-smoke: $(BIN)/r2cserve
	$(GO) run ./tools/servesmoke $(BIN)/r2cserve

# The tier-1 gate: what CI (.github/workflows/ci.yml) runs. The exec engine
# and the telemetry package (ops HTTP server, span sinks, registry) are cheap
# enough to always take the race detector. The tight -timeout is load-bearing:
# the fault-injection tests exercise watchdogs and stalls, and a regression
# that reintroduces a real hang should fail the gate in minutes, not hours.
check: build vet test
	$(GO) test -race -timeout 300s ./internal/exec/ ./internal/telemetry/ ./internal/vm/ ./internal/pcode/ ./internal/incident/ ./internal/fleet/ ./internal/mvee/
	$(GO) test -run=^$$ -bench=BenchmarkVM -benchtime=1x ./internal/vm/

clean:
	$(GO) clean ./...
	rm -rf $(BIN)
