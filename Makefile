# Convenience targets for the usual development loop. Everything is
# stdlib-only Go; no target needs the network.

GO ?= go

.PHONY: all build vet test test-race bench check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The telemetry registry is the only concurrently-updated state; its tests
# exercise it under the race detector.
test-race:
	$(GO) test -race ./internal/telemetry/ ./internal/sim/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# The tier-1 gate: what CI runs.
check: build vet test

clean:
	$(GO) clean ./...
